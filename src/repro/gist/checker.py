"""Tree-invariant checking.

Used by the test suite and the crash-injection harness to assert that a
tree is structurally consistent — in particular after restart recovery,
where the paper's correctness claim is exactly that the tree is brought
back to a consistent state reflecting all committed and no uncommitted
content changes (section 9).

Checked invariants:

1. every page reachable from the root is allocated and of the expected
   kind for its level (leaves at level 0, internals above);
2. every internal entry's predicate bounds the *entire* content of the
   child's split chain segment it is responsible for — i.e. the union of
   the child subtree's keys is consistent-with (and covered by) the
   parent predicate, modulo rightlinks to siblings that have their own
   downlinks;
3. each node's stored BP covers all of its (live) content;
4. rightlink chains are acyclic and stay within one level;
5. NSNs never exceed the current global counter value;
6. the leaves partition the RID set: no RID appears twice (section 2);
7. every leaf entry is reachable by a search with its own key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gist.tree import GiST
from repro.storage.page import NO_PAGE, PageId
from repro.sync.latch import LatchMode


@dataclass
class CheckReport:
    """Result of a consistency check."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    pages: int = 0
    leaf_entries: int = 0
    live_entries: int = 0

    def fail(self, message: str) -> None:
        """Record a violation and mark the report failed."""
        self.ok = False
        self.errors.append(message)


def check_tree(tree: GiST, *, check_reachability: bool = True) -> CheckReport:
    """Verify the structural invariants of ``tree``.

    Intended for quiesced trees (tests, post-recovery); it takes S
    latches page by page but does not lock, so concurrent writers can
    produce false positives.
    """
    from repro.errors import PageError

    report = CheckReport()
    pool = tree.db.pool
    pages: dict[PageId, object] = {}
    frontier = [tree.root_pid]
    while frontier:
        pid = frontier.pop()
        if pid in pages or pid == NO_PAGE:
            continue
        try:
            with pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page.snapshot()
        except PageError:
            report.fail(f"referenced page {pid} does not exist")
            continue
        pages[pid] = page
        if page.rightlink != NO_PAGE:
            frontier.append(page.rightlink)
        if page.is_internal:
            frontier.extend(e.child for e in page.entries)
    report.pages = len(pages)

    _check_levels_and_links(tree, pages, report)
    _check_bounding_predicates(tree, pages, report)
    _check_rid_partition(tree, pages, report)
    _check_nsns(tree, pages, report)
    if check_reachability and report.ok:
        _check_reachability(tree, pages, report)
    return report


def _check_levels_and_links(tree, pages, report) -> None:
    for pid, page in pages.items():
        if page.is_leaf and page.level != 0:
            report.fail(f"leaf page {pid} has level {page.level}")
        if page.is_internal and page.level == 0:
            report.fail(f"internal page {pid} has level 0")
        if page.rightlink != NO_PAGE:
            sibling = pages.get(page.rightlink)
            if sibling is None:
                report.fail(
                    f"page {pid} rightlink {page.rightlink} unreachable"
                )
            elif sibling.level != page.level:
                report.fail(
                    f"page {pid} (level {page.level}) links to "
                    f"{page.rightlink} (level {sibling.level})"
                )
        if page.is_internal:
            for entry in page.entries:
                child = pages.get(entry.child)
                if child is None:
                    report.fail(
                        f"page {pid} has dangling downlink {entry.child}"
                    )
                elif child.level != page.level - 1:
                    report.fail(
                        f"page {pid} (level {page.level}) points to "
                        f"{entry.child} (level {child.level})"
                    )
    # acyclicity of rightlink chains
    for pid, page in pages.items():
        slow = pid
        seen = set()
        while slow != NO_PAGE:
            if slow in seen:
                report.fail(f"rightlink cycle through page {pid}")
                break
            seen.add(slow)
            nxt = pages.get(slow)
            slow = nxt.rightlink if nxt is not None else NO_PAGE


def _subtree_preds(tree, pages, pid, out: list) -> None:
    page = pages[pid]
    if page.is_leaf:
        out.extend(e.key for e in page.entries if not e.deleted)
    else:
        for entry in page.entries:
            if entry.child in pages:
                _subtree_preds(tree, pages, entry.child, out)


def _check_bounding_predicates(tree, pages, report) -> None:
    ext = tree.ext
    for pid, page in pages.items():
        # node's own BP covers its live content
        if page.bp is not None:
            if page.is_leaf:
                content = [e.key for e in page.entries if not e.deleted]
            else:
                content = [e.pred for e in page.entries]
            for pred in content:
                if not ext.covers(page.bp, pred):
                    report.fail(
                        f"page {pid} BP {page.bp!r} does not cover "
                        f"{pred!r}"
                    )
        # every downlink's predicate bounds the child subtree
        if page.is_internal:
            for entry in page.entries:
                if entry.child not in pages:
                    continue
                keys: list = []
                _subtree_preds(tree, pages, entry.child, keys)
                for key in keys:
                    if not ext.covers(entry.pred, key):
                        report.fail(
                            f"downlink {pid}->{entry.child} pred "
                            f"{entry.pred!r} misses key {key!r}"
                        )


def _check_rid_partition(tree, pages, report) -> None:
    # The partition rule (section 2: exactly one leaf entry per data
    # record) applies to *live* entries; a committed tombstone may
    # transiently coexist with the record's re-insertion until garbage
    # collection sweeps it.
    seen: dict[object, PageId] = {}
    for pid, page in pages.items():
        if not page.is_leaf:
            continue
        for entry in page.entries:
            report.leaf_entries += 1
            if entry.deleted:
                continue
            report.live_entries += 1
            if entry.rid in seen:
                report.fail(
                    f"RID {entry.rid!r} live on both page "
                    f"{seen[entry.rid]} and page {pid}"
                )
            seen[entry.rid] = pid


def _check_nsns(tree, pages, report) -> None:
    current = tree.nsn.current()
    for pid, page in pages.items():
        if page.nsn > current:
            report.fail(
                f"page {pid} NSN {page.nsn} exceeds global counter "
                f"{current}"
            )


def _check_reachability(tree, pages, report) -> None:
    """Every live leaf entry must be found by searching for its key."""
    ext = tree.ext
    for pid, page in pages.items():
        if not page.is_leaf:
            continue
        for entry in page.entries:
            if entry.deleted:
                continue
            if not _reachable(ext, pages, tree.root_pid, entry.key):
                report.fail(
                    f"live entry ({entry.key!r}, {entry.rid!r}) on page "
                    f"{pid} is unreachable from the root"
                )


def _reachable(ext, pages, pid, key) -> bool:
    page = pages.get(pid)
    if page is None:
        return False
    if page.is_leaf:
        return any(
            not e.deleted and e.key == key for e in page.entries
        ) or (
            page.rightlink != NO_PAGE
            and _reachable(ext, pages, page.rightlink, key)
        )
    query = ext.eq_query(key)
    for entry in page.entries:
        if ext.consistent(entry.pred, query) and _reachable(
            ext, pages, entry.child, key
        ):
            return True
    return False
