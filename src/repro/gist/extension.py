"""The GiST extension-method interface ([HNP95], summarized in section 2).

An access method is defined by a handful of extension methods; the tree
template supplies everything else — traversal, splits, BP propagation,
and (in this library, per the paper) concurrency, isolation and recovery.
The paper's point is precisely that the extension writer supplies *only*
these methods ("a few hundred lines of extension code") and never sees a
latch, lock, predicate attachment or log record.

The four classic methods are ``consistent``, ``union``, ``penalty`` and
``pickSplit``.  Two small additions the algorithms need:

* ``same(a, b)`` — predicate equality, used by ``updateBP`` to detect
  that an ancestor's BP needs no further expansion and by the predicate
  percolation test of Figure 4;
* ``eq_query(key)`` — the "= key" predicate that unique-index insertion
  leaves on visited nodes (section 8) and that key deletion searches by
  (section 7).

``organize`` is the optional intra-node layout hook mentioned at the end
of section 2 (a B-tree keeps entries sorted to allow binary search).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence


class GiSTExtension(ABC):
    """Extension methods specializing the GiST to one access method."""

    #: short name used in diagnostics and the catalog
    name: str = "gist"

    # ------------------------------------------------------------------
    # required methods
    # ------------------------------------------------------------------
    @abstractmethod
    def consistent(self, pred: object, query: object) -> bool:
        """May a key satisfying ``pred`` also satisfy ``query``?

        Both arguments may be stored predicates (BPs or keys) or query
        predicates; the test is an intersection test and must never
        return a false negative.  This single method drives search
        navigation, predicate-lock conflict checking, attachment
        replication and percolation.
        """

    @abstractmethod
    def union(self, preds: Sequence[object]) -> object:
        """The tightest predicate this extension can express that is
        implied by every key satisfying any of ``preds``."""

    @abstractmethod
    def penalty(self, bp: object, key: object) -> float:
        """Domain-specific cost of inserting ``key`` under a subtree
        bounded by ``bp`` (typically: how much ``bp`` must grow)."""

    @abstractmethod
    def pick_split(self, preds: Sequence[object]) -> tuple[list[int], list[int]]:
        """Partition entry indices into (stay, move-right) for a split.

        Both halves must be non-empty and cover all indices exactly once.
        """

    @abstractmethod
    def same(self, a: object, b: object) -> bool:
        """Predicate equality (used to detect 'BP needs no expansion')."""

    @abstractmethod
    def eq_query(self, key: object) -> object:
        """A predicate satisfied by exactly ``key``."""

    # ------------------------------------------------------------------
    # optional methods
    # ------------------------------------------------------------------
    def normalize_key(self, key: object) -> object:
        """Canonical, *hashable* form of a key, applied once on insert
        and delete.

        The cursor's rescan deduplication and garbage collection key on
        ``(key, rid)`` pairs, so stored keys must be hashable; an
        extension whose natural key type is mutable (e.g. the RD-tree's
        sets) converts it here.  Identity by default.
        """
        return key

    def hint_point_query(self, query: object) -> bool:
        """May ``query`` be answered from a single hinted leaf?

        The search-side leaf-hint cache only replays a cached leaf for
        queries the extension declares *point-like*: a repeat of the
        exact same query whose previous run was satisfied by one leaf.
        Extensions with a cheap exactness test (e.g. a B-tree point
        interval) opt in; the conservative default disables search
        hinting entirely.  Insert hinting does not consult this hook —
        any live leaf whose BP covers the new key is a valid target.
        """
        return False

    def organize(self, preds: Sequence[object]) -> list[int] | None:
        """Optional intra-node layout: return a permutation of indices
        (e.g. sort order for a B-tree), or ``None`` to keep insertion
        order.  Purely an efficiency hook; correctness never depends on
        entry order within a node."""
        return None

    def multi_eq_query(self, keys: Sequence[object]) -> object | None:
        """A predicate satisfied by exactly the listed keys, or ``None``.

        Batched point operations (``multi_get`` / ``multi_delete``) use
        it to answer a whole sorted batch with a single descent: the
        returned object must work anywhere a query does (``consistent``
        against both stored keys and bounding predicates).  The
        conservative default returns ``None`` — batch ops then degrade
        to one point operation per key, which is always correct.
        """
        return None

    def compress(self, pred: object) -> object:
        """Optional on-page key compression (identity by default)."""
        return pred

    def decompress(self, pred: object) -> object:
        """Inverse of :meth:`compress` (identity by default)."""
        return pred

    # ------------------------------------------------------------------
    # derived helpers used by the tree
    # ------------------------------------------------------------------
    def covers(self, bp: object, key: object) -> bool:
        """True if ``bp`` already bounds ``key`` (no expansion needed)."""
        if bp is None:
            return True
        return self.same(self.union([bp, key]), bp)

    def union2(self, a: object, b: object) -> object:
        """Union of two predicates, tolerating ``None`` (= whole space)."""
        if a is None:
            return None
        if b is None:
            return None
        return self.union([a, b])
