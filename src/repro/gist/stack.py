"""Traversal stack entries.

Both search (Figure 3) and insertion (Figure 4) remember, for every node
pointer they intend to visit or may have to revisit, the page id together
with a *memorized sequence number*: the value of the tree-global counter
(or, with the LSN optimization of section 10.1, the parent's page LSN) as
of the moment the pointer was read.  Comparing it against the node's NSN
at visit time is what makes missed splits detectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.page import PageId


@dataclass
class StackEntry:
    """One stacked node pointer.

    ``memo`` is the memorized global-counter value for split detection.
    For insertion stacks (the path of visited ancestors), ``nsn_seen``
    additionally records the node's NSN at visit time, which the back-up
    phases compare to decide whether the ancestor itself has split since
    (Figure 4's ``NSN(parent) changed since first visited`` test).
    """

    pid: PageId
    memo: int
    nsn_seen: int = -1

    def copy(self) -> "StackEntry":
        """An independent copy."""
        return StackEntry(self.pid, self.memo, self.nsn_seen)
