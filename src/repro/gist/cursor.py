"""Search (Figure 3) as an incremental, savepoint-restorable cursor.

The cursor owns the traversal stack of Figure 3: entries are ``(page
pointer, memorized counter value)`` pairs; a node whose NSN exceeds the
memorized value has split since the pointer was stacked, and the cursor
compensates by stacking the rightlink with the *original* memo (so the
whole split chain is covered, however many times the node split).

Protocol details implemented here:

* **Signaling locks** (section 7.2): taken when a pointer is stacked
  (under the latch of the node it was read from), released when the node
  is visited — unless pinned by a savepoint (section 10.2).
* **Predicate attachment** (sections 4.3, 5): under repeatable read the
  search predicate is attached to every visited node, top-down, before
  the node's latch is released.
* **FIFO fairness** (section 10.3): after attaching, the cursor checks
  *insert* predicates attached ahead of its own and blocks on their
  owners (latches released first), then rescans the node.
* **Record locking** (section 4.3): qualifying leaf entries' RIDs are
  S-locked — held to end of transaction under repeatable read, instant
  duration under read committed.  Lock waits never happen under a
  latch: the cursor unlatches, blocks, then re-fixes and rescans,
  deduplicating processed entries by ``(key, RID)`` pair (footnote 9's
  data-RID rule, keyed by the full pair so that a tombstone and a
  re-insertion of the same record cannot mask each other).
* **Logical-delete visibility** (section 7): an entry marked deleted is
  skipped once the cursor holds its record lock (the lock guarantees
  the deleter finished; had it aborted, the mark would be gone).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.gist.stack import StackEntry
from repro.lock.modes import LockMode
from repro.predicate.manager import PredicateKind, PredicateLock, PredicateManager
from repro.storage.buffer import Frame
from repro.storage.page import NO_PAGE
from repro.sync.latch import LatchMode
from repro.txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gist.tree import GiST


class SearchCursor:
    """An open scan over one GiST.

    Parameters
    ----------
    tree, txn, query:
        The tree, owning transaction, and search predicate.
    attach_plock:
        When supplied (unique-index insertion's search phase, section 8),
        this predicate lock is attached to visited nodes instead of a
        freshly registered SEARCH predicate.
    lock_rids:
        Force record locking on/off; defaults to on (data-only locking).
    """

    def __init__(
        self,
        tree: "GiST",
        txn: Transaction,
        query: object,
        *,
        attach_plock: PredicateLock | None = None,
        lock_rids: bool | None = None,
    ) -> None:
        from repro.txn.transaction import IsolationLevel

        self.tree = tree
        self.txn = txn
        self.query = query
        self.repeatable = txn.repeatable_read
        if lock_rids is not None:
            self.lock_rids = lock_rids
        else:
            # Degree 1 reads take no record locks at all (and may see
            # uncommitted data); degrees 2 and 3 lock every qualifying
            # record (instant vs held duration).
            self.lock_rids = (
                txn.isolation is not IsolationLevel.READ_UNCOMMITTED
            )
        self._own_plock = False
        if attach_plock is not None:
            self.plock: PredicateLock | None = attach_plock
        elif self.repeatable:
            self.plock = tree.predicates.register(
                txn.xid, query, PredicateKind.SEARCH
            )
            self._own_plock = True
        else:
            self.plock = None
        #: leaf-hint bookkeeping: which leaves this scan visited, the
        #: NSN of the last one, and the tree epochs at cursor start —
        #: a drained point search that visited exactly one leaf while
        #: both epochs held still is recorded as a hint for repeats.
        self._hint_leaf_pids: set = set()
        self._last_leaf_nsn: int | None = None
        self._hint_recorded = False
        self._epochs_at_start = (tree._hint_epoch, tree._bp_epoch)
        seed: StackEntry | None = None
        if tree.leaf_hints and self.plock is None:
            # Hints never apply under repeatable read: an RR search must
            # attach its predicate along the whole descent path for
            # phantom protection, which only the root descent provides.
            seed = tree._try_search_hint(txn, query)
        if seed is not None:
            self.stack: list[StackEntry] = [seed]
        else:
            memo = tree.nsn.current()
            self.stack = [
                tree._stack_pointer(txn, tree.root_pid, memo)
            ]
        #: (key, RID) pairs already processed — dedup across rescans
        #: (footnote 9 dedupes by data RID; we key by the full pair so a
        #: record re-inserted under a new key while its old tombstone
        #: still awaits garbage collection is not masked)
        self.seen: set = set()
        self._buffer: deque = deque()
        self._closed = False
        txn.register_cursor(self)
        tree.stats.bump("searches")

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def fetch_next(self) -> tuple | None:
        """The next qualifying ``(key, rid)`` pair, or ``None`` at end."""
        while not self._buffer and self.stack:
            self._visit(self.stack.pop())
        if self._buffer:
            return self._buffer.popleft()
        self._note_drained()
        return None

    def fetch_all(self) -> list[tuple]:
        """Drain the cursor."""
        results = []
        while True:
            row = self.fetch_next()
            if row is None:
                return results
            results.append(row)

    def close(self, *, keep_plock: bool = False) -> None:
        """Release traversal state.

        Under repeatable read the search predicate itself stays
        registered until end of transaction (it is what keeps the scanned
        range phantom-free); only the traversal stack's signaling locks
        are surrendered.
        """
        if self._closed:
            return
        self._closed = True
        for entry in self.stack:
            self.tree._release_signaling(self.txn, entry.pid)
        self.stack.clear()
        self.txn.unregister_cursor(self)
        # The predicate lock is deliberately NOT unregistered here: an
        # own (RR search) predicate must outlive the cursor to keep the
        # scanned range phantom-free until end of transaction, and a
        # caller-supplied plock (unique-insert probe) is the caller's to
        # release.  ``keep_plock`` exists purely for documentation at
        # call sites.

    # ------------------------------------------------------------------
    # savepoint support (section 10.2)
    # ------------------------------------------------------------------
    def snapshot_stack(self) -> dict:
        """Position snapshot taken when a savepoint is established."""
        return {
            "stack": [entry.copy() for entry in self.stack],
            "seen": set(self.seen),
            "buffer": list(self._buffer),
        }

    def restore_stack(self, snapshot: dict) -> None:
        """Restore the position saved by :meth:`snapshot_stack`.

        The signaling locks protecting the snapshot's stacked pointers
        were pinned at savepoint time, so the pointers are still safe.
        """
        self.stack = [entry.copy() for entry in snapshot["stack"]]
        self.seen = set(snapshot["seen"])
        self._buffer = deque(snapshot["buffer"])

    # ------------------------------------------------------------------
    # node visits
    # ------------------------------------------------------------------
    def _visit(self, entry: StackEntry) -> None:
        tree, txn = self.tree, self.txn
        pool = tree.db.pool
        pid = entry.pid
        last_handled = entry.memo
        is_leaf = False
        while True:
            frame = pool.fix(pid, LatchMode.S)
            page = frame.page
            # Split detection (section 3): the rightlink is stacked with
            # the memo that delimits the chain; ``last_handled`` advances
            # so that further splits observed on a rescan stack exactly
            # the not-yet-covered sibling.
            if page.nsn > last_handled and page.rightlink != NO_PAGE:
                tree.stats.bump("rightlink_follows")
                tree.stats.bump("nsn_restarts")
                tree.metrics.tracer.event(
                    "gist.restart.nsn_mismatch",
                    tree=tree.name,
                    pid=pid,
                    memo=last_handled,
                    nsn=page.nsn,
                )
                self.stack.append(
                    StackEntry(page.rightlink, last_handled)
                )
                last_handled = page.nsn
            if self.plock is not None:
                tree.predicates.attach(self.plock, pid)
                conflicts = tree.predicates.conflicting(
                    pid,
                    self.query,
                    kinds=(PredicateKind.INSERT,),
                    exclude_owner=txn.xid,
                    before=self.plock,
                )
                if conflicts:
                    pool.unfix(frame)
                    tree.stats.bump("predicate_blocks")
                    PredicateManager.wait_for_owners(
                        tree.db.locks, txn.xid, conflicts
                    )
                    continue  # rescan the node
            is_leaf = page.is_leaf
            if is_leaf:
                self._hint_leaf_pids.add(pid)
                self._last_leaf_nsn = page.nsn
                blocked_rid = self._scan_leaf_once(frame)
                pool.unfix(frame)
                if blocked_rid is None:
                    break
                self._block_on_rid(blocked_rid)
                continue  # rescan the leaf, dedup via self.seen
            child_memo = tree.nsn.memo_for_children(page)
            for node_entry in page.entries:
                if tree.ext.consistent(node_entry.pred, self.query):
                    self.stack.append(
                        tree._stack_pointer(txn, node_entry.child, child_memo)
                    )
            pool.unfix(frame)
            break
        tree._release_signaling(txn, pid)
        tree.db.hooks.fire("search:node-visited", pid=pid, is_leaf=is_leaf)

    def _scan_leaf_once(self, frame: Frame):
        """One pass over the latched leaf; returns a RID to block on,
        or ``None`` when the pass completed."""
        tree, txn = self.tree, self.txn
        locks = tree.db.locks
        for entry in frame.page.entries:
            if (entry.key, entry.rid) in self.seen:
                continue
            if not tree.ext.consistent(entry.key, self.query):
                continue
            if self.lock_rids:
                granted = locks.acquire(
                    txn.xid,
                    tree.rid_lock(entry.rid),
                    LockMode.S,
                    wait=False,
                )
                if not granted:
                    return entry.rid
            # Holding the record lock: a deletion mark can only belong
            # to a finished (committed) deleter or to this transaction;
            # either way the entry is invisible (section 7).
            self.seen.add((entry.key, entry.rid))
            if not entry.deleted:
                self._buffer.append((entry.key, entry.rid))
            if self.lock_rids and not self.repeatable:
                # read committed: instant-duration lock
                locks.release(txn.xid, tree.rid_lock(entry.rid))
        return None

    def _note_drained(self) -> None:
        """Record a leaf hint once the scan is exhausted.

        Eligibility (all required — see ``GiST._try_search_hint`` for
        why each matters): hints enabled, read-committed scan (no
        predicate attachment), a point query per the extension, exactly
        one leaf visited (so that leaf is the *unique* leaf whose BP
        covers the point), and neither tree epoch moved since the
        cursor opened (no node freed, no BP changed anywhere while the
        scan ran).
        """
        if self._hint_recorded:
            return
        self._hint_recorded = True
        tree = self.tree
        if not tree.leaf_hints or self.plock is not None:
            return
        if len(self._hint_leaf_pids) != 1 or self._last_leaf_nsn is None:
            return
        if not tree.ext.hint_point_query(self.query):
            return
        epoch, bp_epoch = self._epochs_at_start
        if epoch != tree._hint_epoch or bp_epoch != tree._bp_epoch:
            return
        (pid,) = self._hint_leaf_pids
        tree._remember_search_hint(
            self.query, pid, self._last_leaf_nsn, epoch, bp_epoch
        )

    def _block_on_rid(self, rid: object) -> None:
        """Wait for the record lock with no latches held, then return
        so the caller can re-validate via rescan."""
        tree, txn = self.tree, self.txn
        tree.db.locks.acquire(
            txn.xid, tree.rid_lock(rid), LockMode.S, wait=True
        )
        if not self.repeatable:
            tree.db.locks.release(txn.xid, tree.rid_lock(rid))
