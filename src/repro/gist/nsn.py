"""Node sequence number sources (sections 3 and 10.1).

The split-detection protocol needs a tree-global, monotonically
increasing counter: a traversal memorizes its value when it reads a
parent entry, a split increments it and stamps the new value on the
original node.  Two implementations, matching section 10.1:

* :class:`CounterNSN` — a dedicated global counter.  It must be made
  recoverable: restart recovery replays the maximum NSN observed in
  split records back into it.  Reading it costs one mutex acquisition
  per qualifying child pointer — the contention the paper worries about.
* :class:`LSNBasedNSN` — the optimization: NSNs are drawn from the LSN
  space.  A split's new NSN is the LSN of its own split record (free),
  and a descending operation can memorize the *parent page's LSN*
  instead of reading the global counter at all, because parent and child
  LSNs come from the same source and the parent's LSN exceeds any child
  NSN whose split it already reflects (footnote 13).

Both expose the same three operations so the tree is oblivious to the
choice; the ablation benchmark (A1) swaps them and counts global reads.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

from repro.storage.page import Page
from repro.wal.log import LogManager


class NSNSource(ABC):
    """Interface shared by the two NSN generation schemes."""

    #: number of reads of the shared global counter (ablation metric)
    global_reads: int = 0

    @abstractmethod
    def current(self) -> int:
        """Read the current global counter value (operation start)."""

    @abstractmethod
    def memo_for_children(self, parent: Page) -> int:
        """Value to memorize when reading child pointers off ``parent``."""

    @abstractmethod
    def next_for_split(self, split_record_lsn: int) -> int:
        """The new NSN to stamp on the original node of a split."""

    @abstractmethod
    def note_recovered(self, nsn: int) -> None:
        """Restart recovery observed ``nsn``; never generate below it."""


class CounterNSN(NSNSource):
    """A dedicated tree-global counter (the base design of section 3)."""

    def __init__(self, start: int = 0) -> None:
        self._mutex = threading.Lock()
        self._value = start
        self.global_reads = 0

    def current(self) -> int:
        """Read the current global counter value (contract: :meth:`NSNSource.current`)."""
        with self._mutex:
            self.global_reads += 1
            return self._value

    def memo_for_children(self, parent: Page) -> int:
        # Base design: every node visit reads the high-frequency global
        # counter — the synchronization traffic §10.1 sets out to avoid.
        """Memo value for child pointers (contract: :meth:`NSNSource.memo_for_children`)."""
        return self.current()

    def next_for_split(self, split_record_lsn: int) -> int:
        """New NSN for a splitting node (contract: :meth:`NSNSource.next_for_split`)."""
        with self._mutex:
            self._value += 1
            return self._value

    def note_recovered(self, nsn: int) -> None:
        """Restore the counter floor after restart (contract: :meth:`NSNSource.note_recovered`)."""
        with self._mutex:
            self._value = max(self._value, nsn)


class LSNBasedNSN(NSNSource):
    """NSNs drawn from the LSN space (the §10.1 optimization)."""

    def __init__(self, log: LogManager) -> None:
        self._log = log
        self.global_reads = 0

    def current(self) -> int:
        # Reading the end-of-log LSN synchronizes with the log manager —
        # needed only once per operation, at the root.
        """Read the current global counter value (contract: :meth:`NSNSource.current`)."""
        self.global_reads += 1
        return self._log.end_lsn

    def memo_for_children(self, parent: Page) -> int:
        # The optimization: memorize the parent's page LSN instead of the
        # global counter.  Valid because parent and child LSNs come from
        # the same source; if the parent entry reflects a child's split,
        # the parent's LSN exceeds that child's NSN (footnote 13).
        """Memo value for child pointers (contract: :meth:`NSNSource.memo_for_children`)."""
        return parent.page_lsn

    def next_for_split(self, split_record_lsn: int) -> int:
        """New NSN for a splitting node (contract: :meth:`NSNSource.next_for_split`)."""
        return split_record_lsn

    def note_recovered(self, nsn: int) -> None:
        # LSNs are recovered with the log itself; nothing to do.
        """Restore the counter floor after restart (contract: :meth:`NSNSource.note_recovered`)."""
        return None
