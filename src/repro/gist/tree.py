"""The concurrent, recoverable GiST (sections 3 and 5–9 of the paper).

This module implements the tree template: insertion (Figure 4), deletion
by logical delete (section 7), unique-index insertion (section 8), and
the structure-modification machinery — node split with NSN/rightlink
juggling (section 3), recursive splitting, root split, and bottom-up BP
propagation with predicate percolation.  Search lives in
:mod:`repro.gist.cursor`, garbage collection / node deletion in
:mod:`repro.gist.maintenance`.

Protocol rules enforced throughout:

* **No latch is held across an I/O or a lock wait.**  Buffer misses pay
  their I/O inside :meth:`BufferPool.pin`, before the latch is taken;
  every code path that must block on a lock or a predicate owner first
  releases its latches and re-validates afterwards via NSN comparison
  and rightlink traversal.
* **No latch coupling during descent** — missed splits are compensated
  by following rightlinks (section 3), with one exception the paper also
  makes: a pointer is *stacked* (and its signaling lock taken) while the
  node it was read from is still latched, which closes the race against
  node deletion.
* **Structure modifications are atomic actions** (nested top actions,
  section 9.1): individually committed, two-phase-latched, and invisible
  to the rollback of the transaction that executed them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import TYPE_CHECKING, Sequence

from repro.errors import (
    KeyNotFoundError,
    RecoveryError,
    ReproError,
    StorageFaultError,
    UniqueViolationError,
)
from repro.gist.extension import GiSTExtension
from repro.gist.nsn import CounterNSN, LSNBasedNSN, NSNSource
from repro.gist.stack import StackEntry
from repro.lock.modes import LockMode
from repro.obs.metrics import MetricsRegistry
from repro.predicate.manager import (
    PredicateKind,
    PredicateLock,
    PredicateManager,
)
from repro.storage.buffer import Frame
from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageId,
    PageKind,
)
from repro.sync.latch import LatchMode
from repro.txn.transaction import Transaction
from repro.wal.records import (
    AddLeafEntryRecord,
    GarbageCollectionRecord,
    GetPageRecord,
    InternalEntryAddRecord,
    InternalEntryUpdateRecord,
    MarkLeafEntryRecord,
    PageImageClr,
    RemoveLeafEntryClr,
    RootReplaceRecord,
    RootSplitRecord,
    SplitRecord,
    UnmarkLeafEntryClr,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import Database


class TreeStats:
    """Operation counters exposed to the benchmark harness.

    Dual-homed: the tree keeps its own plain-int counters (what tests
    and the harness read as ``tree.stats.splits``) and mirrors every
    bump into shared ``gist.*`` counters on the database's metrics
    registry, so multi-tree workloads aggregate naturally in
    ``db.metrics.snapshot()``.
    """

    FIELDS = (
        "searches",
        "inserts",
        "deletes",
        "splits",
        "root_splits",
        "bp_updates",
        "rightlink_follows",
        "predicate_blocks",
        "gc_runs",
        "gc_entries",
        "node_deletes",
        "parent_redescents",
        "nsn_restarts",
        "drain_waits",
        "hint_hits",
        "hint_misses",
        "hint_descents_saved",
        "batch_ops",
        "batch_keys",
        "batch_leaf_runs",
        "batch_descents_saved",
        "bulk_loads",
        "bulk_pages_built",
    )

    #: registry names diverging from the plain ``gist.<field>`` scheme
    _NAME_OVERRIDES = {
        "nsn_restarts": "gist.restarts.nsn_mismatch",
        "drain_waits": "gist.drain.waits",
    }

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        registry = registry or MetricsRegistry()
        self._counters = {}
        for field in self.FIELDS:
            setattr(self, field, 0)
            name = self._NAME_OVERRIDES.get(field, f"gist.{field}")
            self._counters[field] = registry.counter(name)

    def bump(self, field: str, amount: int = 1) -> None:
        """Increment a named counter (local and registry-shared)."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)
        self._counters[field].inc(amount)

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the per-tree counters."""
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}


class GiST:
    """A concurrent, recoverable Generalized Search Tree.

    Created through :meth:`repro.database.Database.create_tree`; all
    operations run on behalf of a :class:`~repro.txn.Transaction`.
    """

    def __init__(
        self,
        db: "Database",
        name: str,
        extension: GiSTExtension,
        root_pid: PageId,
        *,
        unique: bool = False,
        nsn_source: str = "counter",
    ) -> None:
        self.db = db
        self.name = name
        self.ext = extension
        self.root_pid = root_pid
        self.unique = unique
        self.predicates = PredicateManager(extension.consistent)
        self.metrics = db.metrics
        self.stats = TreeStats(self.metrics)
        self._h_search_ns = self.metrics.histogram("gist.op.search_ns")
        self._h_insert_ns = self.metrics.histogram("gist.op.insert_ns")
        self._h_delete_ns = self.metrics.histogram("gist.op.delete_ns")
        #: leaf-hint descent cache (``Database(leaf_hints=True)``): each
        #: thread remembers the leaf its last insert landed on and the
        #: leaf that answered its last point search, so repeats can skip
        #: the root descent after revalidating the hint (see
        #: ``_try_hinted_leaf`` / ``_try_search_hint``).
        self.leaf_hints = bool(getattr(db, "leaf_hints", False))
        self._hints = threading.local()
        self._hint_lock = threading.Lock()
        #: liveness epoch: bumped whenever a node of this tree (or any
        #: page, on allocation undo) is freed, so a hint can never land
        #: on a FREE or reused page.
        self._hint_epoch = 0
        #: coverage epoch: bumped whenever any BP expands or shrinks, so
        #: a search hint can never hide a leaf that newly covers the
        #: query.
        self._bp_epoch = 0
        if nsn_source == "lsn":
            self.nsn: NSNSource = LSNBasedNSN(db.log)
        elif nsn_source == "counter":
            self.nsn = CounterNSN()
        else:
            raise ReproError(f"unknown nsn_source {nsn_source!r}")
        self.nsn_source = nsn_source

    # ------------------------------------------------------------------
    # lock naming
    # ------------------------------------------------------------------
    @staticmethod
    def rid_lock(rid: object) -> tuple:
        """Lock name of a data record (data-only locking, §4.1 fn. 4)."""
        return ("rid", rid)

    def node_lock(self, pid: PageId) -> tuple:
        """Signaling-lock name of a tree node (section 7.2)."""
        return ("node", self.name, pid)

    # ------------------------------------------------------------------
    # signaling-lock helpers
    # ------------------------------------------------------------------
    def _stack_pointer(
        self, txn: Transaction, pid: PageId, memo: int
    ) -> StackEntry:
        """Take a signaling lock and build a stack entry for ``pid``.

        Must be called while the node the pointer was read from is still
        latched, which makes the acquisition race-free against node
        deletion (the deleter needs that node's X latch to unlink).
        """
        self.db.locks.acquire(txn.xid, self.node_lock(pid), LockMode.S)
        txn.note_signaling(self.node_lock(pid))
        return StackEntry(pid, memo)

    def _release_signaling(self, txn: Transaction, pid: PageId) -> None:
        """Release one signaling-lock count after visiting ``pid``,
        unless a savepoint or the end-of-transaction rule pins it."""
        name = self.node_lock(pid)
        if not txn.may_release_signaling(name):
            return
        txn.drop_signaling(name)
        self.db.locks.release(txn.xid, name)

    # ------------------------------------------------------------------
    # leaf-hint descent cache
    # ------------------------------------------------------------------
    # A hint is a per-thread remembered (leaf pid, NSN memo, epoch)
    # triple.  It is only ever *used* after revalidation with the same
    # machinery the protocol applies to any node: latch the page, check
    # it is still a live leaf of this tree (epoch), and treat the NSN
    # memo exactly like a stacked pointer's memo — a higher NSN means
    # the leaf split since the hint was taken and the memo-delimited
    # rightlink chain must be consulted.  Any doubt falls back to the
    # root descent; hints are an optimization, never a correctness
    # dependency.

    def _hint_state(self) -> dict:
        state = getattr(self._hints, "state", None)
        if state is None:
            state = {"insert": None, "search": None}
            self._hints.state = state
        return state

    def bump_hint_epoch(self) -> None:
        """Invalidate every leaf hint: a node was unlinked/freed, so a
        remembered pid may now be FREE or reused.  Called under the
        victim's X latch, *before* the page becomes reusable."""
        with self._hint_lock:
            self._hint_epoch += 1

    def bump_bp_epoch(self) -> None:
        """Invalidate search hints: some BP expanded or shrank, so the
        set of leaves covering a remembered point query may have
        changed."""
        with self._hint_lock:
            self._bp_epoch += 1

    def _remember_insert_hint(self, frame: Frame) -> None:
        """Record the leaf an insert landed on (leaf X latch held)."""
        if not self.leaf_hints:
            return
        page = frame.page
        self._hint_state()["insert"] = (
            page.pid, page.nsn, self._hint_epoch
        )

    def _try_hinted_leaf(
        self, txn: Transaction, key: object
    ) -> Frame | None:
        """Validate the thread's insert hint for ``key``.

        Returns the X-latched target leaf with its signaling lock taken
        (exactly what ``_locate_leaf`` would produce, with an empty
        ancestor stack), or ``None`` to fall back to the root descent.

        Soundness: any *live* leaf of this tree whose BP covers ``key``
        is a correct insert target — GiST invariants don't prescribe
        which covering leaf receives an entry, and no ancestor BP needs
        expanding when the leaf's own BP already covers the key.  The
        epoch check runs *after* latching, which closes the race with a
        deleter (it bumps the epoch while still holding the victim's X
        latch); the signaling lock is taken under the leaf's own X
        latch, so a deleter's drain probe observes it.  Full leaves are
        rejected so splits keep their normal stacked-ancestor path.
        """
        from repro.errors import PageError

        state = self._hint_state()
        hint = state["insert"]
        if hint is None:
            return None
        pid, memo, epoch = hint
        if epoch != self._hint_epoch:
            state["insert"] = None
            self.stats.bump("hint_misses")
            return None
        pool = self.db.pool
        try:
            frame = pool.fix(pid, LatchMode.X)
        except PageError:
            state["insert"] = None
            self.stats.bump("hint_misses")
            return None
        page = frame.page
        if epoch != self._hint_epoch or not page.is_leaf:
            pool.unfix(frame)
            state["insert"] = None
            self.stats.bump("hint_misses")
            return None
        if page.nsn > memo and page.rightlink != NO_PAGE:
            # The leaf split since the hint was taken: choose within the
            # memo-delimited chain (hand-over-hand latching protects the
            # walk against concurrent unlinks, as in the normal descent).
            frame = self._choose_in_chain(txn, frame, memo, key)
            page = frame.page
        if (
            not page.is_leaf
            or page.is_full
            or not self.ext.covers(page.bp, key)
        ):
            pool.unfix(frame)
            self.stats.bump("hint_misses")
            return None
        self._stack_pointer(txn, page.pid, memo)
        self.stats.bump("hint_hits")
        self.stats.bump("hint_descents_saved")
        return frame

    def _remember_search_hint(
        self,
        query: object,
        pid: PageId,
        memo: int,
        epoch: int,
        bp_epoch: int,
    ) -> None:
        """Record a drained point search answered by exactly one leaf.

        ``epoch``/``bp_epoch`` are the values observed when the search
        *started*; the cursor only calls this when both are still
        current, so no node was freed and no BP changed anywhere during
        the search.
        """
        self._hint_state()["search"] = (pid, memo, epoch, bp_epoch, query)

    def _try_search_hint(
        self, txn: Transaction, query: object
    ) -> StackEntry | None:
        """Validate the thread's search hint for ``query``.

        Returns a stacked pointer (signaling lock held) seeding the
        cursor at the hinted leaf, or ``None`` for a root descent.  Only
        an *identical* repeat of the recorded point query qualifies, and
        only while both epochs are unchanged: recording required the
        hinted leaf to be the unique leaf whose BP covered the point
        (the search visited exactly one leaf), and any BP
        expansion/shrink or node free since then invalidates that
        uniqueness.  The cursor's normal NSN check still runs on the
        seeded pointer, so splits after recording are chased through
        the rightlink chain as usual.
        """
        from repro.errors import PageError

        state = self._hint_state()
        hint = state["search"]
        if hint is None:
            return None
        pid, memo, epoch, bp_epoch, hinted_query = hint
        try:
            if hinted_query != query:
                return None
        except StorageFaultError:
            raise
        except Exception:
            # exotic __eq__ on a user query type: treat as a hint miss
            return None
        if not self.ext.hint_point_query(query):
            return None
        if epoch != self._hint_epoch or bp_epoch != self._bp_epoch:
            state["search"] = None
            self.stats.bump("hint_misses")
            return None
        pool = self.db.pool
        try:
            frame = pool.fix(pid, LatchMode.S)
        except PageError:
            state["search"] = None
            self.stats.bump("hint_misses")
            return None
        try:
            if (
                epoch != self._hint_epoch
                or bp_epoch != self._bp_epoch
                or not frame.page.is_leaf
            ):
                state["search"] = None
                self.stats.bump("hint_misses")
                return None
            entry = self._stack_pointer(txn, pid, memo)
        finally:
            pool.unfix(frame)
        self.stats.bump("hint_hits")
        self.stats.bump("hint_descents_saved")
        return entry

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    @contextmanager
    def _fault_cleanup(self):
        """Release leaked pins/latches when a storage fault unwinds.

        A :class:`~repro.errors.StorageFaultError` surfacing out of a
        page fix aborts the operation mid-descent, past frames it still
        holds pinned and latched; without cleanup the thread's next
        operation self-deadlocks re-acquiring its own latch.  Every
        public entry point (and the undo executor's leaf methods) runs
        under this guard.  No-op unless a fault plan is installed.
        """
        try:
            yield
        except StorageFaultError:
            self.db.pool.release_thread_fixes()
            raise

    def search(self, txn: Transaction, query: object) -> list[tuple]:
        """All ``(key, rid)`` pairs satisfying ``query`` (Figure 3)."""
        from repro.gist.cursor import SearchCursor

        spans = self.db.spans
        span = spans.begin("search", self.name) if spans is not None else None
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        cursor = SearchCursor(self, txn, query)
        try:
            with self._fault_cleanup():
                return cursor.fetch_all()
        finally:
            cursor.close()
            if timed:
                dur = perf_counter_ns() - t0
                self._h_search_ns.record(dur)
                self.metrics.tracer.record_span(
                    "gist.search", dur, tree=self.name
                )
            if spans is not None:
                spans.finish(span)

    def open_cursor(self, txn: Transaction, query: object):
        """An incremental search cursor (restorable across savepoints)."""
        from repro.gist.cursor import SearchCursor

        return SearchCursor(self, txn, query)

    def insert(self, txn: Transaction, key: object, rid: object) -> None:
        """Insert a ``(key, rid)`` pair (Figure 4; section 6 or 8)."""
        txn.require_active()
        key = self.ext.normalize_key(key)
        spans = self.db.spans
        span = spans.begin("insert", self.name) if spans is not None else None
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        try:
            if self.unique:
                with self._fault_cleanup():
                    self._insert_unique(txn, key, rid)
            else:
                # Phase 1: X-lock the data record before touching the tree.
                self.db.locks.acquire(
                    txn.xid, self.rid_lock(rid), LockMode.X
                )
                plock = self.predicates.register(
                    txn.xid, self.ext.eq_query(key), PredicateKind.INSERT
                )
                try:
                    with self._fault_cleanup():
                        self._insert_located(txn, key, rid, plock)
                finally:
                    self.predicates.unregister(plock)
        finally:
            if spans is not None:
                spans.finish(span)
        self.stats.bump("inserts")
        if timed:
            dur = perf_counter_ns() - t0
            self._h_insert_ns.record(dur)
            self.metrics.tracer.record_span(
                "gist.insert", dur, tree=self.name
            )

    def insert_many(
        self, txn: Transaction, pairs: "Sequence[tuple]"
    ) -> int:
        """Insert a batch of ``(key, rid)`` pairs; returns the count.

        Keys are pre-ordered with the extension's ``organize`` hook when
        it provides one — consecutive inserts then tend to hit the same
        leaves, which keeps the descent path hot in the buffer pool.
        """
        pairs = list(pairs)
        order = self.ext.organize([key for key, _ in pairs])
        if order is not None:
            pairs = [pairs[i] for i in order]
        for key, rid in pairs:
            self.insert(txn, key, rid)
        return len(pairs)

    def count(self, txn: Transaction, query: object) -> int:
        """Number of entries satisfying ``query``.

        Isolation semantics are identical to :meth:`search` (under
        repeatable read the counted range is phantom-protected), only
        the materialized result list is avoided.
        """
        from repro.gist.cursor import SearchCursor

        spans = self.db.spans
        span = spans.begin("scan", self.name) if spans is not None else None
        cursor = SearchCursor(self, txn, query)
        try:
            with self._fault_cleanup():
                total = 0
                while cursor.fetch_next() is not None:
                    total += 1
                return total
        finally:
            cursor.close()
            if spans is not None:
                spans.finish(span)

    def delete_where(self, txn: Transaction, query: object) -> int:
        """Logically delete every entry satisfying ``query``.

        Runs as search-then-delete inside the caller's transaction: the
        search S locks upgrade to X as each entry is marked, and under
        repeatable read the emptied range stays phantom-free until
        commit.  Returns the number of entries deleted.
        """
        victims = self.search(txn, query)
        for key, rid in victims:
            self.delete(txn, key, rid)
        return len(victims)

    def delete(self, txn: Transaction, key: object, rid: object) -> None:
        """Logically delete a ``(key, rid)`` pair (section 7).

        The entry is only *marked*; it stays physically present so that
        repeatable-read scans block on the deleter's record lock, and
        the path to it is left unshrunk.  Physical removal happens later
        through garbage collection (:mod:`repro.gist.maintenance`).
        """
        txn.require_active()
        key = self.ext.normalize_key(key)
        spans = self.db.spans
        span = spans.begin("delete", self.name) if spans is not None else None
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        try:
            self.db.locks.acquire(txn.xid, self.rid_lock(rid), LockMode.X)
            with self._fault_cleanup():
                found = self._mark_deleted(txn, key, rid)
        finally:
            if spans is not None:
                spans.finish(span)
        if not found:
            raise KeyNotFoundError(
                f"({key!r}, {rid!r}) not found in tree {self.name!r}"
            )
        self.stats.bump("deletes")
        if timed:
            dur = perf_counter_ns() - t0
            self._h_delete_ns.record(dur)
            self.metrics.tracer.record_span(
                "gist.delete", dur, tree=self.name
            )

    # ------------------------------------------------------------------
    # batched operations (multi_get / multi_put / multi_delete)
    # ------------------------------------------------------------------
    def _organize_pairs(
        self, pairs: "Sequence[tuple]"
    ) -> tuple[list[tuple], bool]:
        """Normalize keys and sort the batch with the ``organize`` hook.

        Returns ``(pairs, organized)``: the flag records whether the
        extension actually imposed an order — consecutive pairs of an
        organized batch are close in the key domain, which licenses the
        greedy leaf-run extension in :meth:`_multi_put_located`.
        """
        pairs = [
            (self.ext.normalize_key(key), rid) for key, rid in pairs
        ]
        order = self.ext.organize([key for key, _ in pairs])
        if order is not None:
            pairs = [pairs[i] for i in order]
        return pairs, order is not None

    def multi_put(self, txn: Transaction, pairs: "Sequence[tuple]") -> int:
        """Batched insert: one descent per *leaf run* of the sorted batch.

        The batch is sorted with the extension's ``organize`` hook, then
        consumed run by run: each run locates its head's target leaf
        once (through the leaf-hint cache when enabled) and appends
        every subsequent pair the leaf can absorb — key covered by the
        leaf's BP, a free slot remaining — emitting the leaf's WAL
        records through the batched log path.  Locking is identical to
        ``len(pairs)`` point inserts: every RID is X-locked and every
        insert predicate registered *before* the tree is touched, the
        target leaf's signaling lock is pinned to end of transaction,
        and each pair checks the search predicates queued ahead of it.
        Unique trees fall back to the per-key protocol (section 8's
        duplicate defence is inherently per-key).  Returns the count.
        """
        txn.require_active()
        pairs, organized = self._organize_pairs(pairs)
        if not pairs:
            return 0
        if self.unique:
            for key, rid in pairs:
                self.insert(txn, key, rid)
            return len(pairs)
        spans = self.db.spans
        span = (
            spans.begin("multi_put", self.name)
            if spans is not None
            else None
        )
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        plocks: list[PredicateLock] = []
        try:
            # Phase 1 for the whole batch: X-lock every data record and
            # register every insert predicate before touching the tree.
            for key, rid in pairs:
                self.db.locks.acquire(
                    txn.xid, self.rid_lock(rid), LockMode.X
                )
                plocks.append(
                    self.predicates.register(
                        txn.xid,
                        self.ext.eq_query(key),
                        PredicateKind.INSERT,
                    )
                )
            with self._fault_cleanup():
                self._multi_put_located(txn, pairs, plocks, organized)
        finally:
            for plock in plocks:
                self.predicates.unregister(plock)
            if spans is not None:
                spans.finish(span)
        self.stats.bump("inserts", len(pairs))
        self.stats.bump("batch_ops")
        self.stats.bump("batch_keys", len(pairs))
        if timed:
            dur = perf_counter_ns() - t0
            self._h_insert_ns.record(dur)
            self.metrics.tracer.record_span(
                "gist.multi_put", dur, tree=self.name, keys=len(pairs)
            )
        return len(pairs)

    def _multi_put_located(
        self,
        txn: Transaction,
        pairs: list[tuple],
        plocks: list[PredicateLock],
        organized: bool,
    ) -> None:
        """Consume the sorted batch one leaf run at a time.

        With an ``organized`` batch the run is extended greedily over
        consecutive pairs up to the leaf's free slots — BP coverage is
        an invariant maintained by expansion (:meth:`_update_bp`), not
        a placement requirement, and consecutive organized keys are
        close so one expansion covers the whole run (a B-tree append
        batch expands the rightmost leaf exactly as point inserts
        would).  Unorganized batches only extend runs over keys the
        leaf's BP already covers.
        """
        pool = self.db.pool
        i, n = 0, len(pairs)
        while i < n:
            key, rid = pairs[i]
            frame, stack = self._locate_leaf(txn, key)
            conflicts: list = []
            run = [(key, rid)]
            try:
                if frame.page.is_full:
                    self._gc_leaf(txn, frame)
                if frame.page.is_full:
                    self.db.hooks.fire(
                        "insert:before-split", pid=frame.page.pid
                    )
                    frame = self._split_atomic(
                        txn, frame, stack, key_hint=key
                    )
                page = frame.page
                # The run's leaf keeps its signaling lock to end of
                # transaction (section 7.2 / 9), like any insert target.
                leaf_name = self.node_lock(page.pid)
                if self.db.locks.held_mode(txn.xid, leaf_name) is None:
                    self.db.locks.acquire(txn.xid, leaf_name, LockMode.S)
                    txn.note_signaling(leaf_name)
                txn.pin_signaling_to_eot(leaf_name)
                # Extend the run: subsequent pairs the leaf can absorb
                # without a split (and, for unorganized batches,
                # without a BP expansion).
                free = page.capacity - len(page.entries)
                while (
                    i + len(run) < n
                    and len(run) < free
                    and (
                        organized
                        or self.ext.covers(
                            page.bp, pairs[i + len(run)][0]
                        )
                    )
                ):
                    run.append(pairs[i + len(run)])
                # One BP expansion up the tree covers the whole run.
                if page.bp is not None and any(
                    not self.ext.covers(page.bp, k) for k, _ in run
                ):
                    self._update_bp(
                        txn,
                        frame,
                        self.ext.union(
                            [page.bp] + [k for k, _ in run]
                        ),
                        stack,
                    )
                records = [
                    AddLeafEntryRecord(
                        xid=txn.xid,
                        tree=self.name,
                        page_id=page.pid,
                        nsn=page.nsn,
                        key=k,
                        rid=r,
                    )
                    for k, r in run
                ]
                lsns = self.db.log.append_many(records)
                for record in records:
                    record.redo_page(page)
                frame.mark_dirty(lsns[-1])
                self._remember_insert_hint(frame)
                # Phase 6 per pair: attach its insert predicate, collect
                # the search predicates queued ahead of it (FIFO).
                for offset, (k, _) in enumerate(run):
                    plock = plocks[i + offset]
                    self.predicates.attach(plock, page.pid)
                    conflicts.extend(
                        self.predicates.conflicting(
                            page.pid,
                            k,
                            kinds=(PredicateKind.SEARCH,),
                            exclude_owner=txn.xid,
                            before=plock,
                        )
                    )
                pid = page.pid
            finally:
                if frame.latch.held_by_me() is not None:
                    pool.unfix(frame)
                self._release_path_signaling(txn, stack)
            self.stats.bump("batch_leaf_runs")
            if len(run) > 1:
                self.stats.bump("batch_descents_saved", len(run) - 1)
            self.db.hooks.fire(
                "multi_put:run", pid=pid, count=len(run)
            )
            if conflicts:
                self.stats.bump("predicate_blocks")
                PredicateManager.wait_for_owners(
                    self.db.locks, txn.xid, conflicts
                )
            i += len(run)

    def multi_get(
        self, txn: Transaction, keys: "Sequence[object]"
    ) -> dict:
        """Batched point lookup: rids for each key, one shared descent.

        Returns ``{normalized key: [rids]}`` for every requested key
        (missing keys map to an empty list).  When the extension can
        express a multi-point predicate (:meth:`~repro.gist.extension.
        GiSTExtension.multi_eq_query`), the whole sorted batch is
        answered by a single cursor descent under one phantom-protected
        predicate — locking and isolation are exactly those of a
        :meth:`search` with that predicate.  Otherwise it degrades to
        one point search per distinct key.
        """
        results: dict = {
            self.ext.normalize_key(key): [] for key in keys
        }
        if not results:
            return results
        distinct = list(results)
        order = self.ext.organize(distinct)
        if order is not None:
            distinct = [distinct[i] for i in order]
        query = self.ext.multi_eq_query(distinct)
        if query is None:
            for key in distinct:
                for _, rid in self.search(txn, self.ext.eq_query(key)):
                    results[key].append(rid)
            return results
        self.stats.bump("batch_ops")
        self.stats.bump("batch_keys", len(distinct))
        if len(distinct) > 1:
            self.stats.bump("batch_descents_saved", len(distinct) - 1)
        for found_key, rid in self.search(txn, query):
            bucket = results.get(found_key)
            if bucket is not None:
                bucket.append(rid)
            else:
                # key types whose equality is not hash equality: route
                # through the extension's consistency test instead
                for key in distinct:
                    if self.ext.consistent(
                        found_key, self.ext.eq_query(key)
                    ):
                        results[key].append(rid)
        return results

    def multi_delete(
        self, txn: Transaction, pairs: "Sequence[tuple]"
    ) -> int:
        """Batched logical delete of ``(key, rid)`` pairs.

        X-locks every target RID up front, then marks all entries in
        one multi-point traversal (one descent visiting exactly the
        leaves the batch touches, batched WAL emission per leaf).
        Raises :class:`KeyNotFoundError` if any pair is absent — after
        marking everything that was found, mirroring a partially
        executed loop of :meth:`delete` calls.  Extensions without
        ``multi_eq_query`` degrade to the per-pair protocol.
        """
        txn.require_active()
        pairs, _ = self._organize_pairs(pairs)
        if not pairs:
            return 0
        spans = self.db.spans
        span = (
            spans.begin("multi_delete", self.name)
            if spans is not None
            else None
        )
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        try:
            query = self.ext.multi_eq_query([key for key, _ in pairs])
            if query is None:
                for key, rid in pairs:
                    self.delete(txn, key, rid)
                return len(pairs)
            for key, rid in pairs:
                self.db.locks.acquire(
                    txn.xid, self.rid_lock(rid), LockMode.X
                )
            targets = set(pairs)
            with self._fault_cleanup():
                found = self._mark_deleted_batch(txn, query, targets)
            missing = targets - found
            if missing:
                key, rid = min(missing, key=repr)
                raise KeyNotFoundError(
                    f"({key!r}, {rid!r}) not found in tree {self.name!r}"
                )
        finally:
            if spans is not None:
                spans.finish(span)
        self.stats.bump("deletes", len(pairs))
        self.stats.bump("batch_ops")
        self.stats.bump("batch_keys", len(pairs))
        if len(pairs) > 1:
            self.stats.bump("batch_descents_saved", len(pairs) - 1)
        if timed:
            dur = perf_counter_ns() - t0
            self._h_delete_ns.record(dur)
            self.metrics.tracer.record_span(
                "gist.multi_delete", dur, tree=self.name, keys=len(pairs)
            )
        return len(pairs)

    def _mark_deleted_batch(
        self, txn: Transaction, query: object, targets: set
    ) -> set:
        """Mark every targeted ``(key, rid)`` found under ``query``.

        The multi-point analogue of ``_mark_deleted``: one traversal,
        marking all of a leaf's targeted entries with a single batched
        WAL append.  Returns the set of pairs actually marked.
        """
        memo = self.nsn.current()
        stack = [self._stack_pointer(txn, self.root_pid, memo)]
        found: set = set()
        try:
            while stack and len(found) < len(targets):
                entry = stack.pop()
                self._mark_visit_batch(txn, entry, query, targets, found, stack)
                self._release_signaling(txn, entry.pid)
        finally:
            # Drain: release signaling locks of unvisited pointers.
            for entry in stack:
                self._release_signaling(txn, entry.pid)
        return found

    def _mark_visit_batch(
        self,
        txn: Transaction,
        entry: StackEntry,
        query: object,
        targets: set,
        found: set,
        stack: list[StackEntry],
    ) -> None:
        pool, log = self.db.pool, self.db.log
        pid = entry.pid
        last_handled = entry.memo
        # Peek at the node level with an S latch; leaves need X.
        frame = pool.fix(pid, LatchMode.S)
        try:
            if frame.page.is_leaf:
                # Trade the S latch for X; the unlatched window is
                # compensated by the NSN check below (see _mark_visit).
                pool.unfix(frame)
                frame = None
                frame = pool.fix(pid, LatchMode.X)
            page = frame.page
            if page.nsn > last_handled and page.rightlink != NO_PAGE:
                self.stats.bump("rightlink_follows")
                self.stats.bump("nsn_restarts")
                self.metrics.tracer.event(
                    "gist.restart.nsn_mismatch",
                    tree=self.name,
                    pid=page.pid,
                    memo=last_handled,
                    nsn=page.nsn,
                )
                stack.append(StackEntry(page.rightlink, last_handled))
            if page.is_leaf:
                victims = [
                    e
                    for e in page.entries
                    if not e.deleted
                    and (e.key, e.rid) in targets
                    and (e.key, e.rid) not in found
                ]
                if not victims:
                    return
                records = [
                    MarkLeafEntryRecord(
                        xid=txn.xid,
                        tree=self.name,
                        page_id=page.pid,
                        nsn=page.nsn,
                        key=e.key,
                        rid=e.rid,
                    )
                    for e in victims
                ]
                lsns = log.append_many(records)
                for record in records:
                    record.redo_page(page)
                frame.mark_dirty(lsns[-1])
                for e in victims:
                    found.add((e.key, e.rid))
                    self.db.hooks.fire(
                        "delete:marked", pid=page.pid, rid=e.rid
                    )
                return
            child_memo = self.nsn.memo_for_children(page)
            for node_entry in page.entries:
                if self.ext.consistent(node_entry.pred, query):
                    stack.append(
                        self._stack_pointer(
                            txn, node_entry.child, child_memo
                        )
                    )
        finally:
            if frame is not None:
                pool.unfix(frame)

    # ------------------------------------------------------------------
    # bottom-up bulk load
    # ------------------------------------------------------------------
    def bulk_load(
        self,
        txn: Transaction,
        pairs: "Sequence[tuple]",
        *,
        fill: float = 0.75,
    ) -> int:
        """Build the tree bottom-up from a sorted batch (empty tree only).

        The structure — empty leaves at ``fill`` fraction of capacity,
        internal levels above them, and the root attach — is built in
        **one nested top action** while the root's X latch is held: a
        crash at any point either rolls the whole structure back (the
        undoable :class:`~repro.wal.records.RootReplaceRecord` restores
        the old root image before the Get-Page undos free the child
        pages) or, after the NTA committed, leaves a legal tree of empty
        leaves.  The entries themselves are then filled in
        transactionally per leaf through the batched log path, so a
        rollback of ``txn`` after the load logically deletes every
        entry but keeps the (empty) structure — exactly like any
        completed SMO.  Locking matches :meth:`multi_put`: all RIDs are
        X-locked and all insert predicates registered up front, and
        search predicates attached to the old root replicate to every
        built page.  When the tree is not an empty leaf (or the batch
        fits in the root) this degrades to the :meth:`multi_put` run
        protocol.  Returns the number of entries loaded.
        """
        if not 0.0 < fill <= 1.0:
            raise ValueError(f"fill factor {fill!r} outside (0, 1]")
        txn.require_active()
        pairs, organized = self._organize_pairs(pairs)
        if not pairs:
            return 0
        if self.unique:
            seen_keys: set = set()
            for key, _ in pairs:
                if key in seen_keys:
                    raise UniqueViolationError(key)
                seen_keys.add(key)
        spans = self.db.spans
        span = (
            spans.begin("bulk_load", self.name)
            if spans is not None
            else None
        )
        timed = self.metrics.enabled
        t0 = perf_counter_ns() if timed else 0
        plocks: list[PredicateLock] = []
        try:
            for key, rid in pairs:
                self.db.locks.acquire(
                    txn.xid, self.rid_lock(rid), LockMode.X
                )
                plocks.append(
                    self.predicates.register(
                        txn.xid,
                        self.ext.eq_query(key),
                        PredicateKind.INSERT,
                    )
                )
            with self._fault_cleanup():
                loaded = self._bulk_load_located(txn, pairs, plocks, fill)
                if not loaded:
                    if self.unique:
                        # The tree has prior content: the in-batch
                        # duplicate check above is not enough, run the
                        # full per-key duplicate protocol.
                        for i, (key, rid) in enumerate(pairs):
                            self.predicates.unregister(plocks[i])
                            plocks[i] = None  # type: ignore[call-overload]
                            self._insert_unique(txn, key, rid)
                    else:
                        self._multi_put_located(
                            txn, pairs, plocks, organized
                        )
        finally:
            for plock in plocks:
                if plock is not None:
                    self.predicates.unregister(plock)
            if spans is not None:
                spans.finish(span)
        self.stats.bump("inserts", len(pairs))
        self.stats.bump("batch_ops")
        self.stats.bump("batch_keys", len(pairs))
        if timed:
            dur = perf_counter_ns() - t0
            self._h_insert_ns.record(dur)
            self.metrics.tracer.record_span(
                "gist.bulk_load", dur, tree=self.name, keys=len(pairs)
            )
        return len(pairs)

    def _bulk_load_located(
        self,
        txn: Transaction,
        pairs: list[tuple],
        plocks: list[PredicateLock],
        fill: float,
    ) -> bool:
        """Build structure + fill leaves; False if the fast path is off.

        Returns ``False`` without touching the tree when the root is
        not an empty leaf or the batch fits in it — the caller then
        falls back to the run-based insert protocol.
        """
        pool, log = self.db.pool, self.db.log
        unfixed = False
        filled_leaves: list[tuple[PageId, list[tuple]]] = []
        root_frame = pool.fix(self.root_pid, LatchMode.X)
        try:
            root = root_frame.page
            if not root.is_leaf or root.entries:
                return False
            capacity = root.capacity
            per_leaf = max(2, min(capacity, int(capacity * fill)))
            if len(pairs) <= capacity:
                return False  # a single leaf suffices; no structure to build
            old_image = root.snapshot()

            # The whole structure is one atomic action (section 9.1).
            # Everything below is pure in-memory page building — the
            # only waits are log appends, which are legal under latches.
            saved = log.begin_nta(txn.xid)
            chunks = [
                pairs[i : i + per_leaf]
                for i in range(0, len(pairs), per_leaf)
            ]
            built: list[tuple[PageId, object]] = []
            level_nodes: list[tuple[PageId, object]] = []
            for chunk in chunks:
                bp = self.ext.union([key for key, _ in chunk])
                pid = self._bulk_build_page(
                    txn, PageKind.LEAF, 0, bp, [], capacity
                )
                built.append((pid, bp))
                level_nodes.append((pid, bp))
                filled_leaves.append((pid, chunk))
            level = 1
            while len(level_nodes) > capacity:
                parents: list[tuple[PageId, object]] = []
                for i in range(0, len(level_nodes), per_leaf):
                    group = level_nodes[i : i + per_leaf]
                    entries = [
                        InternalEntry(pred=bp, child=pid)
                        for pid, bp in group
                    ]
                    bp = self.ext.union([bp for _, bp in group])
                    pid = self._bulk_build_page(
                        txn, PageKind.INTERNAL, level, bp, entries, capacity
                    )
                    built.append((pid, bp))
                    parents.append((pid, bp))
                level_nodes = parents
                level += 1

            # Attach: swap the empty root leaf's image for an internal
            # node over the top level.  Root pid (and its BP: the whole
            # space) stay stable, so no descent ever sees a moved root.
            new_image = Page(
                pid=root.pid,
                kind=PageKind.INTERNAL,
                level=level,
                nsn=root.nsn,
                capacity=capacity,
                entries=[
                    InternalEntry(pred=bp, child=pid)
                    for pid, bp in level_nodes
                ],
            )
            record = RootReplaceRecord(
                xid=txn.xid,
                page_id=root.pid,
                new_image=new_image,
                old_image=old_image,
            )
            lsn = log.append(record)
            record.redo_page(root)
            root_frame.mark_dirty(lsn)
            # Inside the atomic action, after the attach: a crash hook
            # here exercises the RootReplaceRecord undo path.
            self.db.hooks.fire("bulk:attached", pid=root.pid)
            log.end_nta(txn.xid, saved)
            self.db.hooks.fire(
                "bulk:structure-built",
                pid=root.pid,
                pages=len(built),
                levels=level,
            )
            # Search predicates attached to the root-as-leaf must reach
            # every page of the new structure they are consistent with
            # (the attachment invariant) — same rule as a split.
            for pid, bp in built:
                self.predicates.replicate_for_split(root.pid, pid, bp)
            self.stats.bump("bulk_loads")
            self.metrics.tracer.event(
                "gist.bulk_load",
                tree=self.name,
                pages=len(built),
                levels=level,
                keys=len(pairs),
            )
            # The root stopped being a leaf: cached leaf hints and BP
            # memos anchored at it are stale.
            self.bump_hint_epoch()
            self.bump_bp_epoch()
            pool.unfix(root_frame)
            unfixed = True
        finally:
            if not unfixed and root_frame.latch.held_by_me() is not None:
                pool.unfix(root_frame)

        # Fill phase: transactional content, one batched append per leaf.
        conflicts: list = []
        offset = 0
        for pid, chunk in filled_leaves:
            frame = pool.fix(pid, LatchMode.X)
            try:
                page = frame.page
                leaf_name = self.node_lock(page.pid)
                if self.db.locks.held_mode(txn.xid, leaf_name) is None:
                    # A freshly built page cannot have a queued X waiter
                    # (drain deleters only probe no-wait), so this never
                    # blocks under the latch.
                    self.db.locks.acquire(
                        txn.xid, leaf_name, LockMode.S
                    )  # lint: allow(lock-wait-under-latch): never waits
                    txn.note_signaling(leaf_name)
                txn.pin_signaling_to_eot(leaf_name)
                records = [
                    AddLeafEntryRecord(
                        xid=txn.xid,
                        tree=self.name,
                        page_id=page.pid,
                        nsn=page.nsn,
                        key=k,
                        rid=r,
                    )
                    for k, r in chunk
                ]
                lsns = log.append_many(records)
                for rec in records:
                    rec.redo_page(page)
                frame.mark_dirty(lsns[-1])
                for j, (k, _) in enumerate(chunk):
                    plock = plocks[offset + j]
                    self.predicates.attach(plock, page.pid)
                    conflicts.extend(
                        self.predicates.conflicting(
                            page.pid,
                            k,
                            kinds=(PredicateKind.SEARCH,),
                            exclude_owner=txn.xid,
                            before=plock,
                        )
                    )
            finally:
                pool.unfix(frame)
            self.db.hooks.fire(
                "bulk:leaf-filled", pid=pid, count=len(chunk)
            )
            offset += len(chunk)
        if conflicts:
            self.stats.bump("predicate_blocks")
            PredicateManager.wait_for_owners(
                self.db.locks, txn.xid, conflicts
            )
        return True

    def _bulk_build_page(
        self,
        txn: Transaction,
        kind: PageKind,
        level: int,
        bp: object,
        entries: list,
        capacity: int,
    ) -> PageId:
        """Allocate, log and install one bulk-built page; returns its id.

        Logged as Get-Page (undoable: rollback of the enclosing NTA
        frees the page) plus a redo-only full image, the same shape the
        other structure modifications use.
        """
        pool, log, store = self.db.pool, self.db.log, self.db.store
        pid = store.allocate()
        log.append(GetPageRecord(xid=txn.xid, page_id=pid))
        page = Page(
            pid=pid,
            kind=kind,
            level=level,
            capacity=capacity,
            bp=bp,
            entries=entries,
        )
        record = PageImageClr(
            xid=txn.xid, page_id=pid, image=page.snapshot()
        )
        lsn = log.append(record)
        frame = pool.adopt(page)
        frame.mark_dirty(lsn)
        self.stats.bump("bulk_pages_built")
        return pid

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _insert_located(
        self,
        txn: Transaction,
        key: object,
        rid: object,
        plock: PredicateLock,
    ) -> None:
        """Phases 2–6 of section 6 (the tree part of an insertion)."""
        pool = self.db.pool
        frame, stack = self._locate_leaf(txn, key)
        self.db.hooks.fire("insert:leaf-located", pid=frame.page.pid)
        retry_wait: list | None = None
        try:
            if frame.page.is_full:
                # Opportunistic garbage collection may avoid the split
                # altogether (section 7.1).
                self._gc_leaf(txn, frame)
            if frame.page.is_full:
                self.db.hooks.fire("insert:before-split", pid=frame.page.pid)
                frame = self._split_atomic(txn, frame, stack, key_hint=key)
            page = frame.page
            # The target leaf's signaling lock is retained to end of
            # transaction (section 7.2 / section 9): the logical-undo
            # path to this leaf must stay intact.
            leaf_name = self.node_lock(page.pid)
            if self.db.locks.held_mode(txn.xid, leaf_name) is None:
                self.db.locks.acquire(txn.xid, leaf_name, LockMode.S)
                txn.note_signaling(leaf_name)
            txn.pin_signaling_to_eot(leaf_name)

            if self.unique:
                # Last-line duplicate defence (section 8): a racing
                # inserter of the same key whose entry or "= key"
                # predicate reached this leaf first.
                retry_wait = self._unique_leaf_check(
                    txn, frame, key, rid, plock
                )
            if retry_wait is None:
                self._perform_leaf_insert(txn, frame, stack, key, rid)
                self._remember_insert_hint(frame)
            conflicts = ()
            if retry_wait is None:
                # Phase 6: register our insert predicate, then check the
                # search predicates attached *ahead of it* (FIFO
                # fairness, section 10.3).
                self.predicates.attach(plock, page.pid)
                conflicts = self.predicates.conflicting(
                    page.pid,
                    key,
                    kinds=(PredicateKind.SEARCH,),
                    exclude_owner=txn.xid,
                    before=plock,
                )
            pid = page.pid
        finally:
            # A failure inside a split may have already handed the frame
            # off (e.g. a root split unfixes the old root); only release
            # what this thread still holds.
            if frame.latch.held_by_me() is not None:
                pool.unfix(frame)
            self._release_path_signaling(txn, stack)
        if retry_wait is not None:
            self.stats.bump("predicate_blocks")
            self._wait_for_txns(txn, retry_wait)
            raise _RetryUniqueProbe()
        self.db.hooks.fire("insert:done", pid=pid)
        if conflicts:
            self.stats.bump("predicate_blocks")
            PredicateManager.wait_for_owners(
                self.db.locks, txn.xid, conflicts
            )

    def _perform_leaf_insert(
        self,
        txn: Transaction,
        frame: Frame,
        stack: list[StackEntry],
        key: object,
        rid: object,
    ) -> None:
        """Phases 4–5: BP expansion up the tree, then the leaf entry."""
        page = frame.page
        # Phase 4: expand ancestors' BPs (with predicate percolation).
        if page.bp is not None and not self.ext.covers(page.bp, key):
            self._update_bp(
                txn, frame, self.ext.union([page.bp, key]), stack
            )
        # Phase 5: the content change itself, ascribed to the txn.
        record = AddLeafEntryRecord(
            xid=txn.xid,
            tree=self.name,
            page_id=page.pid,
            nsn=page.nsn,
            key=key,
            rid=rid,
        )
        lsn = self.db.log.append(record)
        record.redo_page(page)
        frame.mark_dirty(lsn)

    def _unique_leaf_check(
        self,
        txn: Transaction,
        frame: Frame,
        key: object,
        rid: object,
        plock: PredicateLock,
    ) -> list | None:
        """Final duplicate defence on the target leaf (section 8).

        Returns ``None`` when the insertion may proceed, or a list of
        transaction ids to wait for before re-running the duplicate
        probe.  Raises :class:`UniqueViolationError` on a committed
        duplicate (after S-locking it for error repeatability).
        """
        locks = self.db.locks
        page = frame.page
        for entry in page.entries:
            if entry.rid == rid or entry.key != key:
                continue
            if entry.deleted:
                if entry.delete_xid is not None and self.db.txns.is_committed(
                    entry.delete_xid
                ):
                    continue  # awaiting garbage collection
                if entry.delete_xid == txn.xid:
                    continue  # we deleted it ourselves earlier
            granted = locks.acquire(
                txn.xid, self.rid_lock(entry.rid), LockMode.S, wait=False
            )
            if not granted:
                owners = list(locks.holders(self.rid_lock(entry.rid)))
                return owners
            if entry.deleted:
                continue  # the deleter finished; mark now committed
            raise UniqueViolationError(key)
        conflicts = self.predicates.conflicting(
            page.pid,
            self.ext.eq_query(key),
            kinds=(PredicateKind.INSERT,),
            exclude_owner=txn.xid,
            before=plock if page.pid in plock.attachments else None,
        )
        if conflicts:
            return [p.owner for p in conflicts]
        return None

    def _wait_for_txns(self, txn: Transaction, owners: list) -> None:
        """Block until the listed transactions terminate (no latches)."""
        from repro.txn.manager import txn_lock_name

        for owner in sorted(set(owners)):
            if owner == txn.xid:
                continue
            name = txn_lock_name(owner)
            self.db.locks.acquire(txn.xid, name, LockMode.S)
            self.db.locks.release(txn.xid, name)

    def _release_path_signaling(
        self, txn: Transaction, stack: list[StackEntry]
    ) -> None:
        for entry in stack:
            self._release_signaling(txn, entry.pid)

    def _locate_leaf(
        self, txn: Transaction, key: object
    ) -> tuple[Frame, list[StackEntry]]:
        """Figure 4's ``locateLeaf``: min-penalty descent, no coupling.

        Returns the X-latched target leaf and the stack of visited
        ancestors (each carrying the NSN observed at visit time).  Every
        node on the path holds one of the transaction's signaling locks;
        the caller releases them when the operation completes.
        """
        pool = self.db.pool
        if self.leaf_hints:
            hinted = self._try_hinted_leaf(txn, key)
            if hinted is not None:
                return hinted, []
        stack: list[StackEntry] = []
        memo = self.nsn.current()
        entry = self._stack_pointer(txn, self.root_pid, memo)
        pid, memo = entry.pid, entry.memo
        while True:
            frame = pool.fix(pid, LatchMode.S)
            if frame.page.is_leaf:
                # Leaves are modified in place: re-fix in X mode (the
                # node may split in the unlatched window; the NSN logic
                # below compensates).
                pool.unfix(frame)
                frame = pool.fix(pid, LatchMode.X)
            page = frame.page
            if memo < page.nsn and page.rightlink != NO_PAGE:
                # Missed split (the stacked NSN memo is stale): restart
                # locally by choosing the min-penalty node in the
                # rightlink chain delimited by the memorized value.
                self.stats.bump("nsn_restarts")
                self.metrics.tracer.event(
                    "gist.restart.nsn_mismatch",
                    tree=self.name,
                    pid=page.pid,
                    memo=memo,
                    nsn=page.nsn,
                )
                if self.db.spans is not None:
                    self.db.spans.note_event(
                        "gist.restart.nsn_mismatch", pid=page.pid
                    )
                frame = self._choose_in_chain(txn, frame, memo, key)
                page = frame.page
            if page.is_leaf:
                return frame, stack
            if not page.entries:
                # A transiently empty internal node (its children were
                # vacuumed away, its own deletion is pending).  For the
                # root: collapse it back into an empty leaf; elsewhere:
                # restart the descent, the node is about to disappear.
                if page.pid == self.root_pid:
                    pool.unfix(frame)
                    frame = pool.fix(self.root_pid, LatchMode.X)
                    if frame.page.is_internal and not frame.page.entries:
                        self._collapse_empty_root(txn, frame)
                    pool.unfix(frame)
                else:
                    pool.unfix(frame)
                self._release_signaling(txn, pid)
                self._release_path_signaling(txn, stack)
                stack.clear()
                memo = self.nsn.current()
                entry = self._stack_pointer(txn, self.root_pid, memo)
                pid, memo = entry.pid, entry.memo
                continue
            stack.append(StackEntry(page.pid, memo, nsn_seen=page.nsn))
            best = min(
                page.entries,
                key=lambda e: self.ext.penalty(e.pred, key),
            )
            child_memo = self.nsn.memo_for_children(page)
            child_entry = self._stack_pointer(txn, best.child, child_memo)
            pool.unfix(frame)
            pid, memo = child_entry.pid, child_entry.memo

    def _choose_in_chain(
        self, txn: Transaction, frame: Frame, memo: int, key: object
    ) -> Frame:
        """Walk the rightlink chain delimited by ``memo``; keep the
        min-penalty node latched and release the others.

        At most two latches are held at once (current best + the node
        being examined), always in left-to-right order, so chain walks
        cannot deadlock with each other or with splits.
        """
        pool = self.db.pool
        mode = frame.latch.held_by_me() or LatchMode.S
        best = frame
        best_penalty = self._chain_penalty(frame.page, key)
        current = frame
        while (
            current.page.nsn > memo and current.page.rightlink != NO_PAGE
        ):
            next_pid = current.page.rightlink
            self.stats.bump("rightlink_follows")
            nxt = pool.fix(next_pid, mode)
            penalty = self._chain_penalty(nxt.page, key)
            if current is not best:
                pool.unfix(current)
            if penalty < best_penalty:
                if best is not nxt:
                    pool.unfix(best)
                best = nxt
                best_penalty = penalty
            current = nxt
        if current is not best:
            pool.unfix(current)
        # The chain nodes' signaling locks: the walker holds replicas
        # copied at split time; passing through a node consumes one.
        return best

    def _chain_penalty(self, page: Page, key: object) -> float:
        if page.bp is None:
            return 0.0
        return self.ext.penalty(page.bp, key)

    # ------------------------------------------------------------------
    # node split (Figure 4's splitNode, as one atomic action)
    # ------------------------------------------------------------------
    def _split_atomic(
        self,
        txn: Transaction,
        frame: Frame,
        stack: list[StackEntry],
        *,
        key_hint: object,
    ) -> Frame:
        """Split the X-latched full node inside one nested top action.

        Returns the X-latched side (original or new sibling) with the
        lower insertion penalty for ``key_hint``; the other side is
        unfixed.  Ancestor splits happen recursively inside the same
        atomic action; all its latches are released before it returns
        except the returned frame's (two-phase latching within the
        atomic action, section 9.1).
        """
        saved = self.db.log.begin_nta(txn.xid)
        target = self._split_node(txn, frame, stack, key_hint=key_hint)
        self.db.log.end_nta(txn.xid, saved)
        return target

    def _split_node(
        self,
        txn: Transaction,
        frame: Frame,
        stack: list[StackEntry],
        *,
        key_hint: object = None,
        locate_child: PageId | None = None,
    ) -> Frame:
        page = frame.page
        if page.pid == self.root_pid:
            return self._split_root(
                txn, frame, key_hint=key_hint, locate_child=locate_child
            )
        pool, log = self.db.pool, self.db.log

        # Latch the (correct) parent first, per Figure 4.
        parent = self._fix_parent(txn, page.pid, stack)

        new_frame: Frame | None = None
        new_pinned = False
        try:
            # Allocate and build the new right sibling.
            new_pid = self.db.store.allocate()
            get_rec = GetPageRecord(xid=txn.xid, page_id=new_pid)
            log.append(get_rec)
            new_page = Page(
                pid=new_pid,
                kind=page.kind,
                level=page.level,
                capacity=page.capacity,
            )
            new_frame = pool.adopt(new_page)
            pool.pin(new_pid)
            new_pinned = True
            new_frame.latch.acquire(LatchMode.X)

            stay_idx, move_idx = self._checked_pick_split(page)
            moved = [page.entries[i].copy() for i in move_idx]
            stay_preds = [self._entry_pred(page.entries[i]) for i in stay_idx]
            moved_preds = [self._entry_pred(e) for e in moved]
            split_rec = SplitRecord(
                xid=txn.xid,
                orig_pid=page.pid,
                new_pid=new_pid,
                moved_entries=moved,
                level=page.level,
                kind=page.kind,
                old_nsn=page.nsn,
                new_nsn=0,
                old_rightlink=page.rightlink,
                old_bp=page.bp,
                orig_new_bp=self.ext.union(stay_preds),
                new_page_bp=self.ext.union(moved_preds),
                capacity=page.capacity,
            )
            lsn = log.append(split_rec)
            # Section 3: increment the global counter, stamp the new value
            # on the ORIGINAL node; the sibling inherits the old NSN and
            # rightlink.  (With the LSN source the split record's own LSN is
            # the new value.)
            split_rec.new_nsn = self.nsn.next_for_split(lsn)
            split_rec.redo_page(page)
            frame.mark_dirty(lsn)
            split_rec.redo_page(new_page)
            new_frame.mark_dirty(lsn)
            self.stats.bump("splits")
            self.metrics.tracer.event(
                "gist.split",
                tree=self.name,
                pid=page.pid,
                new_pid=new_pid,
                nsn=split_rec.new_nsn,
            )
            if self.db.flightrec is not None:
                self.db.flightrec.record(
                    "gist.split",
                    tree=self.name,
                    pid=page.pid,
                    new_pid=new_pid,
                    nsn=split_rec.new_nsn,
                )
            if self.db.spans is not None:
                self.db.spans.note_event(
                    "gist.split", pid=page.pid, new_pid=new_pid
                )

            # Replicate predicate attachments consistent with the new BP
            # (section 4.3) and the signaling locks (section 10.3).
            self.predicates.replicate_for_split(
                page.pid, new_pid, new_page.bp
            )
            self.db.locks.replicate_shared(
                self.node_lock(page.pid), self.node_lock(new_pid)
            )
            self.db.hooks.fire(
                "insert:after-split", pid=page.pid, new_pid=new_pid
            )

            # Install the new downlink in the parent, splitting it first if
            # necessary (recursion stays inside the same atomic action).
            if parent.page.is_full:
                parent = self._split_node(
                    txn,
                    parent,
                    stack[:-1],
                    locate_child=page.pid,
                )
            add_rec = InternalEntryAddRecord(
                xid=txn.xid,
                page_id=parent.page.pid,
                pred=new_page.bp,
                child=new_pid,
            )
            lsn = log.append(add_rec)
            add_rec.redo_page(parent.page)
            parent.mark_dirty(lsn)
            old_parent_pred = parent.page.find_child_entry(page.pid).pred
            upd_rec = InternalEntryUpdateRecord(
                xid=txn.xid,
                page_id=parent.page.pid,
                child=page.pid,
                new_bp=page.bp,
                old_bp=old_parent_pred,
            )
            lsn = log.append(upd_rec)
            upd_rec.redo_page(parent.page)
            parent.mark_dirty(lsn)
            pool.unfix(parent)

        except BaseException:
            # An aborting split (extension error, injected fault, log
            # failure) must not strand the sibling or parent latches:
            # release whatever this level still holds.  The caller's
            # own frame remains the caller's responsibility.
            if new_frame is not None and new_frame.latch.held_by_me():
                new_frame.latch.release()
            if new_pinned:
                pool.unpin(new_pid)
            if parent.latch.held_by_me():
                pool.unfix(parent)
            raise
        return self._pick_split_side(
            txn, frame, new_frame, key_hint=key_hint, locate_child=locate_child
        )

    def _split_root(
        self,
        txn: Transaction,
        frame: Frame,
        *,
        key_hint: object = None,
        locate_child: PageId | None = None,
    ) -> Frame:
        """Root split: contents move into two fresh children, the root
        page id stays stable (no root-pointer race; see RootSplitRecord).
        """
        pool, log, store = self.db.pool, self.db.log, self.db.store
        page = frame.page
        left_pid = store.allocate()
        right_pid = store.allocate()
        log.append(GetPageRecord(xid=txn.xid, page_id=left_pid))
        log.append(GetPageRecord(xid=txn.xid, page_id=right_pid))

        stay_idx, move_idx = self._checked_pick_split(page)
        left_entries = [page.entries[i].copy() for i in stay_idx]
        right_entries = [page.entries[i].copy() for i in move_idx]
        rec = RootSplitRecord(
            xid=txn.xid,
            root_pid=page.pid,
            left_pid=left_pid,
            right_pid=right_pid,
            left_entries=left_entries,
            right_entries=right_entries,
            left_bp=self.ext.union(
                [self._entry_pred(e) for e in left_entries]
            ),
            right_bp=self.ext.union(
                [self._entry_pred(e) for e in right_entries]
            ),
            child_kind=page.kind,
            child_level=page.level,
            old_nsn=page.nsn,
            new_nsn=0,
            capacity=page.capacity,
        )
        lsn = log.append(rec)
        rec.new_nsn = self.nsn.next_for_split(lsn)

        left_frame: Frame | None = None
        right_frame: Frame | None = None
        pinned_pids: list[PageId] = []
        try:
            left_frame = pool.adopt(
                Page(pid=left_pid, kind=page.kind, capacity=page.capacity)
            )
            pool.pin(left_pid)
            pinned_pids.append(left_pid)
            left_frame.latch.acquire(LatchMode.X)
            right_frame = pool.adopt(
                Page(pid=right_pid, kind=page.kind, capacity=page.capacity)
            )
            pool.pin(right_pid)
            pinned_pids.append(right_pid)
            right_frame.latch.acquire(LatchMode.X)

            for target_frame in (frame, left_frame, right_frame):
                rec.redo_page(target_frame.page)
                target_frame.mark_dirty(lsn)
            self.stats.bump("root_splits")
            self.stats.bump("splits")
            self.metrics.tracer.event(
                "gist.root_split",
                tree=self.name,
                pid=page.pid,
                left_pid=left_pid,
                right_pid=right_pid,
                nsn=rec.new_nsn,
            )
            if self.db.flightrec is not None:
                self.db.flightrec.record(
                    "gist.root_split",
                    tree=self.name,
                    pid=page.pid,
                    left_pid=left_pid,
                    right_pid=right_pid,
                    nsn=rec.new_nsn,
                )
            if self.db.spans is not None:
                self.db.spans.note_event(
                    "gist.root_split", pid=page.pid
                )

            # Predicates attached to the root replicate to whichever child
            # BP they are consistent with (the attachment invariant).
            self.predicates.replicate_for_split(
                page.pid, left_pid, left_frame.page.bp
            )
            self.predicates.replicate_for_split(
                page.pid, right_pid, right_frame.page.bp
            )
            pool.unfix(frame)
            self.db.hooks.fire(
                "insert:after-split", pid=page.pid, new_pid=right_pid
            )
            # Descents that will land on the new children take signaling
            # locks when they push the fresh downlinks; the caller of this
            # split still holds its lock on the (stable) root id.  For the
            # caller's continued descent we hand over an explicitly taken
            # lock on whichever side it keeps.
        except BaseException:
            # Same unwind contract as _split_node: the half-built
            # children must not leak latches or pins when the split
            # aborts mid-flight; the root frame stays with the caller.
            for cleanup_frame in (left_frame, right_frame):
                if (
                    cleanup_frame is not None
                    and cleanup_frame.latch.held_by_me()
                ):
                    cleanup_frame.latch.release()
            for cleanup_pid in pinned_pids:
                pool.unpin(cleanup_pid)
            raise
        chosen = self._pick_split_side(
            txn,
            left_frame,
            right_frame,
            key_hint=key_hint,
            locate_child=locate_child,
        )
        try:
            name = self.node_lock(chosen.page.pid)
            # Signaling S-lock under the chosen child's latch: a
            # freshly allocated page cannot have a queued X waiter
            # (drain deleters only probe no-wait), so this never
            # blocks and cannot violate the latch-vs-lock-wait rule.
            self.db.locks.acquire(
                txn.xid, name, LockMode.S
            )  # lint: allow(lock-wait-under-latch): never waits
            txn.note_signaling(name)
        except BaseException:
            pool.unfix(chosen)
            raise
        return chosen

    def _pick_split_side(
        self,
        txn: Transaction,
        orig: Frame,
        new: Frame,
        *,
        key_hint: object = None,
        locate_child: PageId | None = None,
    ) -> Frame:
        """Choose which split side the caller continues with."""
        pool = self.db.pool
        if locate_child is not None:
            keep = (
                orig
                if orig.page.find_child_entry(locate_child) is not None
                else new
            )
        elif key_hint is not None:
            orig_pen = self._chain_penalty(orig.page, key_hint)
            new_pen = self._chain_penalty(new.page, key_hint)
            keep = orig if orig_pen <= new_pen else new
            if keep.page.is_full:  # extension produced a lopsided split
                keep = new if keep is orig else orig
        else:
            keep = orig
        drop = new if keep is orig else orig
        pool.unfix(drop)
        return keep

    def _checked_pick_split(
        self, page: Page
    ) -> tuple[list[int], list[int]]:
        preds = [self._entry_pred(e) for e in page.entries]
        stay, move = self.ext.pick_split(preds)
        if not stay or not move:
            raise ReproError(
                f"extension {self.ext.name!r} returned an empty split side"
            )
        if sorted(stay + move) != list(range(len(preds))):
            raise ReproError(
                f"extension {self.ext.name!r} split is not a partition"
            )
        return list(stay), list(move)

    @staticmethod
    def _entry_pred(entry: LeafEntry | InternalEntry) -> object:
        return entry.key if isinstance(entry, LeafEntry) else entry.pred

    def _collapse_empty_root(self, txn: Transaction, frame: Frame) -> None:
        """Turn an empty internal root back into an empty leaf.

        After a vacuum pass deletes every node under the root, the root
        is left internal with no downlinks; one atomic action restores
        it to the empty-leaf state so descents have somewhere to land.
        Logged as a full root image (redo-only, like any SMO).
        """
        page = frame.page
        image = Page(
            pid=page.pid,
            kind=PageKind.LEAF,
            level=0,
            nsn=page.nsn,
            capacity=page.capacity,
        )
        log = self.db.log
        saved = log.begin_nta(txn.xid)
        record = PageImageClr(xid=txn.xid, page_id=page.pid, image=image)
        lsn = log.append(record)
        record.redo_page(page)
        frame.mark_dirty(lsn)
        log.end_nta(txn.xid, saved)

    # ------------------------------------------------------------------
    # parent location (back-up phases)
    # ------------------------------------------------------------------
    def _fix_parent(
        self, txn: Transaction, child_pid: PageId, stack: list[StackEntry]
    ) -> Frame:
        """X-latch the node currently holding ``child_pid``'s downlink.

        Starts from the stacked parent; if the parent split since it was
        first visited, the entry may have moved right — continue in the
        rightlink chain (Figure 4).  If the chain no longer contains it
        (e.g. the root grew levels), re-descend from the root.
        """
        pool = self.db.pool
        self.db.hooks.fire("insert:before-parent", pid=child_pid)
        candidate = stack[-1].pid if stack else self.root_pid
        pid = candidate
        while pid != NO_PAGE:
            frame = pool.fix(pid, LatchMode.X)
            if frame.page.find_child_entry(child_pid) is not None:
                return frame
            next_pid = frame.page.rightlink
            pool.unfix(frame)
            self.stats.bump("rightlink_follows")
            pid = next_pid
        self.stats.bump("parent_redescents")
        frame = self._redescend_to_parent(child_pid)
        if frame is None:
            raise RecoveryError(
                f"no parent found for page {child_pid} in tree {self.name!r}"
            )
        return frame

    def _redescend_to_parent(self, child_pid: PageId) -> Frame | None:
        """Breadth-first hunt for the downlink of ``child_pid``.

        Last-resort path used after a root split changed the shape above
        the stacked parent.  Latches one node at a time (S), re-fixes
        the owner in X mode, and re-validates.
        """
        pool = self.db.pool
        frontier = [self.root_pid]
        seen: set[PageId] = set()
        while frontier:
            next_frontier: list[PageId] = []
            for pid in frontier:
                if pid in seen or pid == child_pid:
                    # never try to latch the child itself: the caller
                    # holds its X latch while looking for its parent
                    continue
                seen.add(pid)
                frame = pool.fix(pid, LatchMode.S)
                page = frame.page
                if page.is_leaf:
                    pool.unfix(frame)
                    continue
                if page.find_child_entry(child_pid) is not None:
                    pool.unfix(frame)
                    owner = pool.fix(pid, LatchMode.X)
                    if owner.page.find_child_entry(child_pid) is not None:
                        return owner
                    pool.unfix(owner)  # moved right meanwhile; keep looking
                    next_frontier.append(page.rightlink)
                    continue
                if page.rightlink != NO_PAGE:
                    next_frontier.append(page.rightlink)
                next_frontier.extend(e.child for e in page.entries)
                pool.unfix(frame)
            frontier = [p for p in next_frontier if p != NO_PAGE]
        return None

    # ------------------------------------------------------------------
    # BP propagation (Figure 4's updateBP)
    # ------------------------------------------------------------------
    def _update_bp(
        self,
        txn: Transaction,
        frame: Frame,
        union_bp: object,
        stack: list[StackEntry],
    ) -> None:
        """Expand ``frame``'s BP to ``union_bp``, propagating upward.

        Recursion latches ancestors bottom-up; the actual updates happen
        top-down on unwind (section 6), each as its own atomic action.
        Parent predicates newly consistent with the expanded BP are
        percolated down (section 4.3).
        """
        from repro.wal.records import ParentEntryUpdateRecord

        page = frame.page
        if page.pid == self.root_pid:
            return  # the root bounds the whole key space
        if page.bp is not None and self.ext.same(page.bp, union_bp):
            return
        pool, log = self.db.pool, self.db.log
        parent = self._fix_parent(txn, page.pid, stack)
        try:
            parent_page = parent.page
            if parent_page.pid != self.root_pid and parent_page.bp is not None:
                parent_union = self.ext.union([parent_page.bp, union_bp])
                self._update_bp(txn, parent, parent_union, stack[:-1])
            old_bp = page.bp
            saved = log.begin_nta(txn.xid)
            record = ParentEntryUpdateRecord(
                xid=txn.xid,
                new_bp=union_bp,
                child_pid=page.pid,
                parent_pid=parent_page.pid,
            )
            lsn = log.append(record)
            record.redo_page(page)
            frame.mark_dirty(lsn)
            record.redo_page(parent_page)
            parent.mark_dirty(lsn)
            log.end_nta(txn.xid, saved)
            self.stats.bump("bp_updates")
            self.bump_bp_epoch()
            # Percolate predicates newly consistent with the child.
            self.predicates.percolate(
                parent_page.pid, page.pid, union_bp, old_bp
            )
        finally:
            pool.unfix(parent)

    # ------------------------------------------------------------------
    # logical deletion (section 7)
    # ------------------------------------------------------------------
    def _mark_deleted(
        self, txn: Transaction, key: object, rid: object
    ) -> bool:
        """Locate the leaf entry and mark it deleted.  Returns found."""
        eq = self.ext.eq_query(key)
        memo = self.nsn.current()
        stack = [self._stack_pointer(txn, self.root_pid, memo)]
        found = False
        try:
            while stack and not found:
                entry = stack.pop()
                found = self._mark_visit(txn, entry, eq, key, rid, stack)
                self._release_signaling(txn, entry.pid)
        finally:
            # Drain: release signaling locks of unvisited pointers.
            for entry in stack:
                self._release_signaling(txn, entry.pid)
        return found

    def _mark_visit(
        self,
        txn: Transaction,
        entry: StackEntry,
        eq: object,
        key: object,
        rid: object,
        stack: list[StackEntry],
    ) -> bool:
        pool, log = self.db.pool, self.db.log
        pid = entry.pid
        last_handled = entry.memo
        # Peek at the node level with an S latch; leaves need X.
        frame = pool.fix(pid, LatchMode.S)
        try:
            if frame.page.is_leaf:
                # Trade the S latch for X; the unlatched window is
                # compensated by the NSN check below.  Clearing the
                # binding first keeps the finally correct if the
                # re-fix itself fails (e.g. an injected read fault).
                pool.unfix(frame)
                frame = None
                frame = pool.fix(pid, LatchMode.X)
            page = frame.page
            if page.nsn > last_handled and page.rightlink != NO_PAGE:
                self.stats.bump("rightlink_follows")
                self.stats.bump("nsn_restarts")
                self.metrics.tracer.event(
                    "gist.restart.nsn_mismatch",
                    tree=self.name,
                    pid=page.pid,
                    memo=last_handled,
                    nsn=page.nsn,
                )
                stack.append(StackEntry(page.rightlink, last_handled))
            if page.is_leaf:
                leaf_entry = page.find_leaf_entry(key, rid)
                if leaf_entry is None or leaf_entry.deleted:
                    # Already deleted => the deleter committed (we hold
                    # the record's X lock, so it must have finished; an
                    # abort would have unmarked it).  Not found.
                    return False
                record = MarkLeafEntryRecord(
                    xid=txn.xid,
                    tree=self.name,
                    page_id=page.pid,
                    nsn=page.nsn,
                    key=key,
                    rid=rid,
                )
                lsn = log.append(record)
                record.redo_page(page)
                frame.mark_dirty(lsn)
                self.db.hooks.fire("delete:marked", pid=page.pid, rid=rid)
                return True
            child_memo = self.nsn.memo_for_children(page)
            for node_entry in page.entries:
                if self.ext.consistent(node_entry.pred, eq):
                    stack.append(
                        self._stack_pointer(txn, node_entry.child, child_memo)
                    )
            return False
        finally:
            if frame is not None:
                pool.unfix(frame)

    # ------------------------------------------------------------------
    # unique-index insertion (section 8)
    # ------------------------------------------------------------------
    def _insert_unique(
        self, txn: Transaction, key: object, rid: object
    ) -> None:
        self.db.locks.acquire(txn.xid, self.rid_lock(rid), LockMode.X)
        eq = self.ext.eq_query(key)
        # The search phase leaves "= key" predicates on every node it
        # visits, which is what turns the insert/insert race into a
        # detectable deadlock (section 8).
        plock = self.predicates.register(
            txn.xid, eq, PredicateKind.INSERT
        )
        try:
            while True:
                duplicate = self._probe_duplicate(txn, eq, rid, plock)
                if duplicate is not None:
                    dup_rid = duplicate
                    # Repeatability of the error: S-lock the duplicate's
                    # data record under two-phase locking; the "= key"
                    # predicates are then unnecessary (section 8).
                    self.db.locks.acquire(
                        txn.xid, self.rid_lock(dup_rid), LockMode.S
                    )
                    raise UniqueViolationError(key)
                try:
                    self._insert_located(txn, key, rid, plock)
                except _RetryUniqueProbe:
                    continue
                return
        finally:
            self.predicates.unregister(plock)

    def _probe_duplicate(
        self,
        txn: Transaction,
        eq: object,
        new_rid: object,
        plock: PredicateLock,
    ) -> object | None:
        """Search phase of a unique insertion.

        Returns the RID of a committed duplicate, or ``None``.  Attaches
        the caller's "= key" predicate to every visited node and blocks
        on conflicting insert predicates ahead of it.
        """
        from repro.gist.cursor import SearchCursor

        cursor = SearchCursor(
            self, txn, eq, attach_plock=plock, lock_rids=True
        )
        try:
            for found_key, found_rid in cursor.fetch_all():
                if found_rid != new_rid:
                    return found_rid
            return None
        finally:
            cursor.close(keep_plock=True)

    # ------------------------------------------------------------------
    # opportunistic garbage collection (section 7.1)
    # ------------------------------------------------------------------
    def _gc_leaf(self, txn: Transaction, frame: Frame) -> int:
        """Physically remove committed-deleter entries from the leaf.

        Runs as an atomic action on behalf of whatever operation happens
        to pass through (section 7.1).  Returns the number of entries
        collected.  BP shrinking is left to vacuum.
        """
        page = frame.page
        txns = self.db.txns
        rids = [
            (e.key, e.rid)
            for e in page.entries
            if e.deleted
            and e.delete_xid is not None
            and txns.is_committed(e.delete_xid)
        ]
        if not rids:
            return 0
        log = self.db.log
        saved = log.begin_nta(txn.xid)
        record = GarbageCollectionRecord(
            xid=txn.xid, page_id=page.pid, rids=rids
        )
        lsn = log.append(record)
        record.redo_page(page)
        frame.mark_dirty(lsn)
        log.end_nta(txn.xid, saved)
        self.stats.bump("gc_runs")
        self.stats.bump("gc_entries", len(rids))
        self.db.hooks.fire("gc:collected", pid=page.pid, count=len(rids))
        return len(rids)

    # ------------------------------------------------------------------
    # logical undo (section 9.2, Table 1's Add/Mark-Leaf-Entry rows)
    # ------------------------------------------------------------------
    def undo_add_leaf_entry(
        self,
        record: AddLeafEntryRecord,
        txn_xid: int,
        *,
        restart: bool,
    ) -> None:
        """Logical undo of a leaf insertion: re-locate the leaf (the
        entry may have moved right through splits) and remove the entry,
        writing the compensating record."""
        with self._fault_cleanup():
            frame = self._locate_for_undo(
                record.page_id, record.key, record.rid
            )
        try:
            clr = RemoveLeafEntryClr(
                xid=txn_xid,
                page_id=frame.page.pid,
                key=record.key,
                rid=record.rid,
            )
            clr.undo_next = record.prev_lsn
            lsn = self.db.log.append(clr)
            clr.redo_page(frame.page)
            frame.mark_dirty(lsn)
        finally:
            self.db.pool.unfix(frame)
        # Immediate garbage collection / BP shrink is permitted only
        # outside restart recovery (section 9.2); we leave both to
        # vacuum even at runtime, which is strictly more conservative.

    def undo_mark_leaf_entry(
        self,
        record: MarkLeafEntryRecord,
        txn_xid: int,
        *,
        restart: bool,
    ) -> None:
        """Logical undo of a logical deletion: unmark the entry."""
        with self._fault_cleanup():
            frame = self._locate_for_undo(
                record.page_id, record.key, record.rid
            )
        try:
            clr = UnmarkLeafEntryClr(
                xid=txn_xid,
                page_id=frame.page.pid,
                key=record.key,
                rid=record.rid,
            )
            clr.undo_next = record.prev_lsn
            lsn = self.db.log.append(clr)
            clr.redo_page(frame.page)
            frame.mark_dirty(lsn)
        finally:
            self.db.pool.unfix(frame)

    def _locate_for_undo(
        self, start_pid: PageId, key: object, rid: object
    ) -> Frame:
        """Find the leaf currently holding ``(key, rid)``, starting from
        the logged page and following rightlinks (section 9.2)."""
        pool = self.db.pool
        pid = start_pid
        while pid != NO_PAGE:
            frame = pool.fix(pid, LatchMode.X)
            if not frame.page.is_leaf:
                # The logged page was the root and has since grown into
                # an internal node (a root split moved its entries down
                # rather than right): fall back to a full descent.
                pool.unfix(frame)
                break
            if frame.page.find_leaf_entry(key, rid) is not None:
                return frame
            next_pid = frame.page.rightlink
            pool.unfix(frame)
            self.stats.bump("rightlink_follows")
            pid = next_pid
        frame = self._descend_for_entry(key, rid)
        if frame is not None:
            return frame
        raise RecoveryError(
            f"logical undo could not re-locate ({key!r}, {rid!r}) "
            f"from page {start_pid} in tree {self.name!r}"
        )

    def _descend_for_entry(self, key: object, rid: object) -> Frame | None:
        """Search the whole tree for a specific (key, rid) leaf entry,
        returning its X-latched leaf (logical-undo fallback path)."""
        pool = self.db.pool
        eq = self.ext.eq_query(key)
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            frame = pool.fix(pid, LatchMode.X)
            page = frame.page
            if page.is_leaf:
                if page.find_leaf_entry(key, rid) is not None:
                    return frame
            else:
                stack.extend(
                    e.child
                    for e in page.entries
                    if self.ext.consistent(e.pred, eq)
                )
            pool.unfix(frame)
        return None

    # ------------------------------------------------------------------
    # read-only helpers for checking / reporting
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (root level + 1); unsynchronized snapshot."""
        with self.db.pool.fixed(self.root_pid, LatchMode.S) as frame:
            return frame.page.level + 1

    def page_count(self) -> int:
        """Number of allocated pages reachable from the root."""
        return len(self.all_pids())

    def all_pids(self) -> list[PageId]:
        """All page ids reachable from the root (downlinks + rightlinks)."""
        pool = self.db.pool
        seen: set[PageId] = set()
        frontier = [self.root_pid]
        while frontier:
            pid = frontier.pop()
            if pid in seen or pid == NO_PAGE:
                continue
            seen.add(pid)
            with pool.fixed(pid, LatchMode.S) as frame:
                page = frame.page
                if page.rightlink != NO_PAGE:
                    frontier.append(page.rightlink)
                if page.is_internal:
                    frontier.extend(e.child for e in page.entries)
        return sorted(seen)


class _RetryUniqueProbe(ReproError):
    """Internal: the unique-insert leaf check found a conflicting insert
    predicate ahead; re-run the duplicate probe."""
