"""Garbage collection, BP shrinking and node deletion (sections 7.1–7.2).

Logical deletion leaves tombstoned entries behind; this module provides
the *vacuum* pass that (a) physically removes entries whose deleting
transactions committed, (b) shrinks bounding predicates that became too
wide, and (c) retires empty nodes.

Node deletion implements the **drain technique**: a node may only be
unlinked when no operation holds a direct or indirect reference to it,
which is visible as the absence of signaling locks — the deleter probes
with a no-wait X lock on the node's lock name (section 7.2).  Unlinking
splices the left sibling's rightlink past the victim and removes the
parent downlink inside one atomic action, then frees the page for reuse.

All structure modifications here are nested top actions executed on
behalf of whatever transaction happens to run the vacuum (they commit
independently of it, section 9.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.gist.tree import GiST
from repro.lock.modes import LockMode
from repro.storage.page import NO_PAGE, PageId, PageKind
from repro.sync.latch import LatchMode
from repro.txn.transaction import Transaction
from repro.wal.records import (
    FreePageRecord,
    InternalEntryDeleteRecord,
    ParentEntryUpdateRecord,
    RightlinkUpdateRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.buffer import Frame


@dataclass
class VacuumReport:
    """What one vacuum pass accomplished."""

    leaves_visited: int = 0
    entries_collected: int = 0
    bps_shrunk: int = 0
    nodes_deleted: int = 0
    deletions_blocked: int = 0
    freed_pids: list[PageId] = field(default_factory=list)


def vacuum(tree: GiST, txn: Transaction) -> VacuumReport:
    """One full maintenance pass over ``tree``.

    Garbage-collects every leaf, shrinks BPs that no longer bound their
    node's content, and attempts to delete nodes left empty.  Safe to
    run concurrently with reads and writes; deletions respect the drain
    condition and simply skip protected nodes.
    """
    report = VacuumReport()
    with tree.metrics.tracer.span("gist.vacuum", tree=tree.name):
        levels = _collect_levels(tree)
        for level_pids in levels:
            for pid in level_pids:
                if pid == tree.root_pid:
                    continue
                _vacuum_node(tree, txn, pid, report)
        # Root collapse: if everything under the root was deleted,
        # restore it to the empty-leaf state.
        with tree.db.pool.fixed(tree.root_pid, LatchMode.X) as root:
            if root.page.is_internal and not root.page.entries:
                tree._collapse_empty_root(txn, root)
    return report


def _collect_levels(tree: GiST) -> list[list[PageId]]:
    """Page ids grouped by level, bottom level first.

    Taken as an unsynchronized snapshot; concurrent splits may add pages
    we miss this pass, which is fine — vacuum is opportunistic.
    """
    pool = tree.db.pool
    by_level: dict[int, list[PageId]] = {}
    frontier = [tree.root_pid]
    seen: set[PageId] = set()
    while frontier:
        pid = frontier.pop()
        if pid in seen or pid == NO_PAGE:
            continue
        seen.add(pid)
        with pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            by_level.setdefault(page.level, []).append(pid)
            if page.rightlink != NO_PAGE:
                frontier.append(page.rightlink)
            if page.is_internal:
                frontier.extend(e.child for e in page.entries)
    return [by_level[level] for level in sorted(by_level)]


def _vacuum_node(
    tree: GiST, txn: Transaction, pid: PageId, report: VacuumReport
) -> None:
    pool = tree.db.pool
    deletable = False
    frame = pool.fix(pid, LatchMode.X)
    try:
        page = frame.page
        if page.kind is PageKind.FREE:
            return
        if page.is_leaf:
            report.leaves_visited += 1
            report.entries_collected += tree._gc_leaf(txn, frame)
        if len(page.entries) == 0:
            deletable = True
        elif _shrink_bp(tree, txn, frame):
            report.bps_shrunk += 1
    finally:
        pool.unfix(frame)
    # The deletion attempt runs unlatched: _try_delete_node re-fixes in
    # the global latch order (left sibling, victim, parent).
    if deletable and _try_delete_node(tree, txn, pid, report):
        report.nodes_deleted += 1


def _shrink_bp(tree: GiST, txn: Transaction, frame: "Frame") -> bool:
    """Tighten the node's BP to the union of its live content.

    The inverse of Figure 4's updateBP; like it, the change is one
    Parent-Entry-Update atomic action per level (here: one level only —
    vacuum visits ancestors in a later group of the same pass).
    """
    page = frame.page
    if page.pid == tree.root_pid or page.bp is None:
        return False
    if page.is_leaf:
        # Every physically present entry counts — including logically
        # deleted ones whose deleter has not committed: the path to a
        # marked entry must survive until it is garbage-collected
        # (section 7).
        preds = [e.key for e in page.entries]
    else:
        preds = [e.pred for e in page.entries]
    if not preds:
        return False
    tight = tree.ext.union(preds)
    if tree.ext.same(tight, page.bp):
        return False
    # The tightened BP must still be covered by the old one; a concurrent
    # insert may be about to rely on the old bound, but it holds the leaf
    # X latch while inserting, and we hold it now, so the content we
    # computed from is current.
    parent = tree._fix_parent(txn, page.pid, [])
    try:
        log = tree.db.log
        saved = log.begin_nta(txn.xid)
        record = ParentEntryUpdateRecord(
            xid=txn.xid,
            new_bp=tight,
            child_pid=page.pid,
            parent_pid=parent.page.pid,
        )
        lsn = log.append(record)
        record.redo_page(page)
        frame.mark_dirty(lsn)
        record.redo_page(parent.page)
        parent.mark_dirty(lsn)
        log.end_nta(txn.xid, saved)
        # A tightened BP may no longer cover a remembered point query.
        tree.bump_bp_epoch()
    finally:
        tree.db.pool.unfix(parent)
    return True


def _note_drain_blocked(
    tree: GiST, victim: PageId, report: VacuumReport, *, probe: str
) -> None:
    """A drain probe found live references: the deletion must wait."""
    report.deletions_blocked += 1
    tree.stats.bump("drain_waits")
    tree.metrics.tracer.event(
        "gist.drain.wait", tree=tree.name, pid=victim, probe=probe
    )


def _find_left_sibling(tree: GiST, victim: PageId) -> PageId:
    """The page whose rightlink points at ``victim``, or ``NO_PAGE``."""
    pool = tree.db.pool
    frontier = [tree.root_pid]
    seen: set[PageId] = set()
    while frontier:
        pid = frontier.pop()
        if pid in seen or pid == NO_PAGE:
            continue
        seen.add(pid)
        with pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page
            if page.rightlink == victim:
                return pid
            if page.rightlink != NO_PAGE:
                frontier.append(page.rightlink)
            if page.is_internal:
                frontier.extend(e.child for e in page.entries)
    return NO_PAGE


def _try_delete_node(
    tree: GiST, txn: Transaction, victim: PageId, report: VacuumReport
) -> bool:
    """Delete an empty node if the drain condition allows (section 7.2).

    The probe is a no-wait X lock on the node's lock name: any direct
    pointer (a stacked reference) or indirect one (a replica copied at
    split time) holds an S signaling lock and defeats the probe.
    """
    tree.db.hooks.fire("node-delete:attempt", pid=victim)
    locks = tree.db.locks
    name = tree.node_lock(victim)
    # First drain probe: any direct or replicated signaling lock defeats
    # it.  The probe lock is released again immediately — holding it
    # across the latch acquisitions below would deadlock against
    # traversals that take signaling locks *under* a node latch.
    if not locks.acquire(txn.xid, name, LockMode.X, wait=False):
        _note_drain_blocked(tree, victim, report, probe="initial")
        return False
    locks.release(txn.xid, name)
    pool, log, store = tree.db.pool, tree.db.log, tree.db.store
    left_pid = _find_left_sibling(tree, victim)
    # Latch order: left sibling, victim, parent — within-level
    # left-to-right, then bottom-up, consistent with splits.
    left = pool.fix(left_pid, LatchMode.X) if left_pid != NO_PAGE else None
    try:
        victim_frame = pool.fix(victim, LatchMode.X)
    except BaseException:
        if left is not None:
            pool.unfix(left)
        raise
    page = victim_frame.page
    if (
        page.entries
        or (left is not None and left.page.rightlink != victim)
    ):
        # Something changed since we looked; try again next pass.
        pool.unfix(victim_frame)
        if left is not None:
            pool.unfix(left)
        _note_drain_blocked(tree, victim, report, probe="revalidate")
        return False
    try:
        parent = tree._fix_parent(txn, victim, [])
    except BaseException:
        pool.unfix(victim_frame)
        if left is not None:
            pool.unfix(left)
        raise
    # Second drain probe, now under *all three* latches.  New references
    # are only ever taken while holding the latch of the node the
    # pointer was read from — the parent (downlink) or the left sibling
    # (rightlink) — and we hold both in X mode, so a successful no-wait
    # probe here is stable for as long as the latches are held, and no
    # traversal can be blocked waiting on this lock while holding a
    # latch we want (the latch-vs-lock deadlock this ordering avoids).
    if not locks.acquire(txn.xid, name, LockMode.X, wait=False):
        pool.unfix(parent)
        pool.unfix(victim_frame)
        if left is not None:
            pool.unfix(left)
        _note_drain_blocked(tree, victim, report, probe="latched")
        return False
    try:
        try:
            saved = log.begin_nta(txn.xid)
            if left is not None:
                link_rec = RightlinkUpdateRecord(
                    xid=txn.xid,
                    page_id=left.page.pid,
                    new_rightlink=page.rightlink,
                    old_rightlink=victim,
                )
                lsn = log.append(link_rec)
                link_rec.redo_page(left.page)
                left.mark_dirty(lsn)
            victim_entry = parent.page.find_child_entry(victim)
            del_rec = InternalEntryDeleteRecord(
                xid=txn.xid,
                page_id=parent.page.pid,
                pred=victim_entry.pred,
                child=victim,
            )
            lsn = log.append(del_rec)
            del_rec.redo_page(parent.page)
            parent.mark_dirty(lsn)
            free_rec = FreePageRecord(xid=txn.xid, page_id=victim)
            log.append(free_rec)
            log.end_nta(txn.xid, saved)
            # Invalidate leaf hints while the victim's X latch is still
            # held: any hinted descent latching the pid after this point
            # sees the bumped epoch and falls back, so a hint can never
            # land on the soon-to-be-FREE (or reused) page.
            tree.bump_hint_epoch()
        finally:
            pool.unfix(parent)
            pool.unfix(victim_frame)
            if left is not None:
                pool.unfix(left)
        # Make the page reusable and purge its stale frame.
        victim_frame.dirty = False
        pool.drop(victim)
        store.free(victim)
        report.freed_pids.append(victim)
        tree.stats.bump("node_deletes")
        tree.db.hooks.fire("node-delete:done", pid=victim)
        return True
    finally:
        locks.release(txn.xid, name)
