"""JSONL export/load helpers shared by the observability subsystems.

The flight recorder, the span tracker and the history recorder all
persist as JSON Lines: one self-describing JSON object per line, sorted
keys, no trailing whitespace.  That format is greppable, appendable,
diffable, and — because key order is canonical — two dumps of the same
event sequence are byte-identical, which is what lets a chaos-trial
black box be compared bit-for-bit across reruns of the same seed.

:func:`canonical_events` strips the non-deterministic fields (wall-clock
timestamps, thread idents) from a dumped event stream, leaving exactly
the replay-comparable core ``(seq, name, data)``.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

__all__ = [
    "canonical_events",
    "dump_jsonl",
    "dumps_line",
    "load_jsonl",
]


def dumps_line(obj: dict) -> str:
    """One canonical JSONL line (sorted keys, compact separators)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )


def dump_jsonl(path: str, objs: Iterable[dict]) -> str:
    """Write ``objs`` to ``path`` as canonical JSONL; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        for obj in objs:
            fh.write(dumps_line(obj))
            fh.write("\n")
    return path


def load_jsonl(path: str) -> list[dict]:
    """Read a JSONL file back into a list of dicts (blank lines skipped)."""
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


#: event fields excluded from the canonical replay form: wall-clock
#: timestamps and thread idents differ between otherwise identical runs
NONDETERMINISTIC_FIELDS = ("ts_ns", "thread")


def canonical_events(
    events: Sequence[dict],
) -> list[tuple[int, str, str]]:
    """The replay-comparable core of a dumped event stream.

    Returns ``(seq, name, data-as-canonical-json)`` triples, ordered by
    ``seq``.  Two runs of the same seeded single-threaded scenario must
    produce equal canonical forms (asserted by the chaos black-box
    tests); anything that varies between such runs is a determinism bug
    in the recorder's callers.
    """
    core = []
    for event in events:
        data = {
            k: v
            for k, v in event.items()
            if k not in ("seq", "name", *NONDETERMINISTIC_FIELDS)
        }
        core.append(
            (int(event.get("seq", 0)), str(event.get("name", "")),
             dumps_line(data))
        )
    core.sort(key=lambda t: t[0])
    return core
