"""A lightweight structured-event tracer with per-thread ring buffers.

Operations record *spans* (named, with a duration) and *events* (named
points in time) into a bounded ring buffer private to the recording
thread, so the hot path is an append to a ``deque`` with no shared lock.
The rings are registered centrally; :meth:`Tracer.events` merges them
into one timestamp-ordered view for inspection and post-mortem analysis
of concurrency scenarios (who followed which rightlink when, where a
drain wait stalled a vacuum, how long each recovery pass took).

Event vocabulary used by the library (``name`` field):

=============================  =======================================
``gist.search/insert/delete``  operation spans (``dur_ns`` set)
``gist.child_visit``           a traversal examined one node
``gist.split`` / ``gist.root_split``  a node/root split committed
``gist.restart.nsn_mismatch``  traversal detected a missed split
``gist.drain.wait``            node deletion refused by the drain probe
``recovery.analysis/redo/undo``  restart-recovery phase spans
=============================  =======================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent:
    """One recorded point event or completed span."""

    __slots__ = ("ts_ns", "thread_id", "name", "dur_ns", "data")

    def __init__(
        self,
        ts_ns: int,
        thread_id: int,
        name: str,
        dur_ns: int | None = None,
        data: dict | None = None,
    ) -> None:
        self.ts_ns = ts_ns
        self.thread_id = thread_id
        self.name = name
        self.dur_ns = dur_ns
        self.data = data or {}

    def as_dict(self) -> dict:
        """The event as a plain dict (JSON-friendly)."""
        out = {
            "ts_ns": self.ts_ns,
            "thread_id": self.thread_id,
            "name": self.name,
        }
        if self.dur_ns is not None:
            out["dur_ns"] = self.dur_ns
        if self.data:
            out["data"] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f" dur={self.dur_ns}ns" if self.dur_ns is not None else ""
        return f"TraceEvent({self.name!r}{dur} t{self.thread_id})"


class _Ring:
    """One thread's private event ring plus its snapshot guard."""

    __slots__ = ("events", "lock")

    def __init__(self, capacity: int) -> None:
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: guards reader snapshots/clears against the owner's appends —
        #: ``list(deque)`` during a concurrent append can raise
        #: ``RuntimeError: deque mutated during iteration``
        self.lock = threading.Lock()


class Tracer:
    """Bounded per-thread event rings merged on demand.

    Parameters
    ----------
    capacity:
        Events retained *per thread*; older events are overwritten
        (ring-buffer semantics via ``deque(maxlen=...)``).
    enabled:
        A disabled tracer turns every recording call into a no-op.
    """

    def __init__(self, capacity: int = 1024, enabled: bool = True) -> None:
        self.capacity = capacity
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._rings: list[_Ring] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _ring(self) -> _Ring:
        try:
            return self._local.ring
        except AttributeError:
            ring = _Ring(self.capacity)
            with self._lock:
                self._rings.append(ring)
            self._local.ring = ring
            return ring

    def event(self, name: str, **data: object) -> None:
        """Record a point event on the calling thread's ring."""
        if not self.enabled:
            return
        ring = self._ring()
        event = TraceEvent(
            time.perf_counter_ns(),
            threading.get_ident(),
            name,
            None,
            data or None,
        )
        with ring.lock:
            ring.events.append(event)

    def record_span(self, name: str, dur_ns: int, **data: object) -> None:
        """Record an already-timed span (``dur_ns`` measured by caller)."""
        if not self.enabled:
            return
        ring = self._ring()
        event = TraceEvent(
            time.perf_counter_ns(),
            threading.get_ident(),
            name,
            dur_ns,
            data or None,
        )
        with ring.lock:
            ring.events.append(event)

    @contextmanager
    def span(self, name: str, **data: object) -> Iterator[None]:
        """Context manager timing its body into one span event."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.record_span(
                name, time.perf_counter_ns() - start, **data
            )

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def events(self, *, name: str | None = None) -> list[TraceEvent]:
        """All retained events, merged across threads in time order.

        A fuzzy snapshot under concurrency, like any other reader —
        rings keep filling while the merge runs — but a *consistent*
        one: each ring is copied under its own guard, so a worker
        appending mid-snapshot can never corrupt the copy.
        """
        with self._lock:
            rings = list(self._rings)
        merged: list[TraceEvent] = []
        for ring in rings:
            with ring.lock:
                merged.extend(ring.events)
        if name is not None:
            merged = [e for e in merged if e.name == name]
        merged.sort(key=lambda e: e.ts_ns)
        return merged

    def clear(self) -> None:
        """Drop every retained event (rings stay registered)."""
        with self._lock:
            rings = list(self._rings)
        for ring in rings:
            with ring.lock:
                ring.events.clear()

    def __len__(self) -> int:
        with self._lock:
            rings = list(self._rings)
        total = 0
        for ring in rings:
            with ring.lock:
                total += len(ring.events)
        return total
