"""Operation-scoped span trees: per-op latency attribution.

Aggregate histograms (PR 1) say *how long* operations take; lockdep
(PR 5) says *whether* the protocol was violated.  The span tracker says
**where one operation's time went**: every database operation (insert /
delete / search / scan / commit / abort) opens an :class:`OpSpan`, the
subsystems it descends through — latch acquires, lock-manager waits,
buffer-pool I/O, WAL appends and flushes — attribute their stalls to
the span of the operation running on the calling thread, and at finish
the residue (total minus all attributed waits) is the operation's CPU
time.

Threading model: the op id is carried *implicitly*.  The tracker keeps
the current span in a ``threading.local``; subsystems fetch it with
:meth:`SpanTracker.active` and add to its tallies.  The paper's
operations are strictly per-thread (a descent never migrates threads),
so a thread-local is exactly the right scope and no signature anywhere
has to grow an ``op_id`` parameter.  Nested operations (``delete_where``
running a search, an undo re-entering the tree) fold into the outermost
span: :meth:`begin` returns ``None`` when a span is already active and
:meth:`finish` ignores ``None``.

Cost model: the tracker exists only when the database was built with
``op_tracing=True``.  Subsystems hold ``None`` otherwise and their hot
paths pay a single attribute-load-plus-branch — the same gating pattern
as the lockdep witness — so the off state adds *zero* function calls
and zero ring writes (counter-asserted in ``bench_obs_overhead``).

Completed spans land in two places: per-kind aggregate instruments on
the metrics registry (``op.<kind>.*``, visible in
``db.metrics.snapshot()``) and a bounded ring of recent spans that
``python -m repro.tools.trace`` pretty-prints.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from time import perf_counter_ns

from repro.obs.export import dump_jsonl
from repro.obs.metrics import MetricsRegistry

__all__ = ["OpSpan", "SpanTracker"]

#: attribution buckets, in the order the trace tool prints them
ATTRIBUTION_FIELDS = (
    "latch_wait_ns",
    "lock_wait_ns",
    "io_ns",
    "wal_ns",
)


class OpSpan:
    """One operation's span: total time plus per-subsystem attribution."""

    __slots__ = (
        "op_id",
        "kind",
        "tree",
        "start_ns",
        "end_ns",
        "latch_wait_ns",
        "lock_wait_ns",
        "io_ns",
        "wal_ns",
        "wal_appends",
        "buffer_fixes",
        "events",
    )

    def __init__(self, op_id: int, kind: str, tree: str | None) -> None:
        self.op_id = op_id
        self.kind = kind
        self.tree = tree
        self.start_ns = perf_counter_ns()
        self.end_ns: int | None = None
        #: cumulative time inside latch acquisition (wait + grant path)
        self.latch_wait_ns = 0
        #: cumulative time blocked in the lock manager
        self.lock_wait_ns = 0
        #: cumulative page-store read/write time (buffer misses,
        #: writebacks and flushes issued by this operation)
        self.io_ns = 0
        #: cumulative WAL flush (group-commit) wait time
        self.wal_ns = 0
        self.wal_appends = 0
        self.buffer_fixes = 0
        #: point events attached to the span (SMOs, NSN restarts)
        self.events: list[tuple[str, dict]] = []

    @property
    def total_ns(self) -> int:
        """Wall time from begin to finish (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def cpu_ns(self) -> int:
        """Total minus every attributed wait — the compute residue.

        Attribution regions never overlap on one thread (a latch is not
        acquired *inside* a page read, etc. — the paper's protocol
        forbids exactly those nestings), so the subtraction is sound.
        """
        waits = (
            self.latch_wait_ns + self.lock_wait_ns + self.io_ns + self.wal_ns
        )
        return max(0, self.total_ns - waits)

    def note_event(self, name: str, **data: object) -> None:
        """Attach a point event (SMO, restart) to this span."""
        self.events.append((name, data))

    def as_dict(self) -> dict:
        """The span as a JSONL-ready dict (the trace tool's input)."""
        out = {
            "op_id": self.op_id,
            "kind": self.kind,
            "total_ns": self.total_ns,
            "cpu_ns": self.cpu_ns,
            "latch_wait_ns": self.latch_wait_ns,
            "lock_wait_ns": self.lock_wait_ns,
            "io_ns": self.io_ns,
            "wal_ns": self.wal_ns,
            "wal_appends": self.wal_appends,
            "buffer_fixes": self.buffer_fixes,
        }
        if self.tree is not None:
            out["tree"] = self.tree
        if self.events:
            out["events"] = [
                {"name": name, **data} for name, data in self.events
            ]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpSpan(#{self.op_id} {self.kind} {self.total_ns}ns)"


class SpanTracker:
    """Creates, carries and aggregates operation spans.

    Parameters
    ----------
    metrics:
        Registry receiving the ``op.<kind>.*`` aggregates.
    capacity:
        Completed spans retained for :meth:`completed` / the trace tool.
    """

    def __init__(
        self, metrics: MetricsRegistry | None = None, capacity: int = 256
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.capacity = capacity
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._done_lock = threading.Lock()
        self._done: deque[OpSpan] = deque(maxlen=capacity)
        #: exact count of spans ever started (bench dormancy gate)
        self._started = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, kind: str, tree: str | None = None) -> OpSpan | None:
        """Open a span for the calling thread's operation.

        Returns ``None`` when a span is already active — nested
        operations attribute into the outermost one — and the caller
        passes whatever it got straight back to :meth:`finish`.
        """
        if getattr(self._local, "span", None) is not None:
            return None
        span = OpSpan(next(self._ids), kind, tree)
        self._local.span = span
        with self._done_lock:
            self._started += 1
        return span

    def finish(self, span: OpSpan | None) -> None:
        """Close ``span``, fold it into the aggregates, retain it."""
        if span is None:
            return
        span.end_ns = perf_counter_ns()
        self._local.span = None
        m = self.metrics
        kind = span.kind
        m.counter(f"op.{kind}.count").inc()
        m.histogram(f"op.{kind}.total_ns").record(span.total_ns)
        m.counter(f"op.{kind}.latch_wait_ns").inc(span.latch_wait_ns)
        m.counter(f"op.{kind}.lock_wait_ns").inc(span.lock_wait_ns)
        m.counter(f"op.{kind}.io_ns").inc(span.io_ns)
        m.counter(f"op.{kind}.wal_ns").inc(span.wal_ns)
        m.counter(f"op.{kind}.cpu_ns").inc(span.cpu_ns)
        m.counter(f"op.{kind}.wal_appends").inc(span.wal_appends)
        m.counter(f"op.{kind}.buffer_fixes").inc(span.buffer_fixes)
        with self._done_lock:
            self._done.append(span)

    def active(self) -> OpSpan | None:
        """The span of the operation running on the calling thread."""
        return getattr(self._local, "span", None)

    # ------------------------------------------------------------------
    # subsystem attribution hooks (each: one thread-local read + branch)
    # ------------------------------------------------------------------
    def add_latch_wait(self, ns: int) -> None:
        """Attribute a latch acquisition's duration to the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.latch_wait_ns += ns

    def add_lock_wait(self, ns: int) -> None:
        """Attribute a lock-manager wait to the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.lock_wait_ns += ns

    def add_io(self, ns: int) -> None:
        """Attribute a page-store read/write to the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.io_ns += ns

    def add_wal(self, ns: int) -> None:
        """Attribute a WAL flush wait to the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.wal_ns += ns

    def note_wal_append(self) -> None:
        """Count one WAL append against the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.wal_appends += 1

    def note_fix(self) -> None:
        """Count one buffer-pool pin against the active op."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.buffer_fixes += 1

    def note_event(self, name: str, **data: object) -> None:
        """Attach a point event to the active op (no-op when none)."""
        span = getattr(self._local, "span", None)
        if span is not None:
            span.note_event(name, **data)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def completed(self) -> list[OpSpan]:
        """Recently completed spans, oldest first."""
        with self._done_lock:
            return list(self._done)

    @property
    def started(self) -> int:
        """Exact number of spans ever begun (bench dormancy gate)."""
        with self._done_lock:
            return self._started

    def export_jsonl(self, path: str) -> str:
        """Dump the completed spans to ``path`` as canonical JSONL."""
        return dump_jsonl(path, (s.as_dict() for s in self.completed()))
