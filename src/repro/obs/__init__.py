"""Unified observability layer: metrics, tracing, black box, oracle.

Every subsystem (latches, locks, buffer pool, WAL, trees, recovery)
reports into one :class:`MetricsRegistry` owned by the
:class:`~repro.database.Database` (``db.metrics``); operation spans and
protocol events land in its :class:`Tracer` (``db.metrics.tracer``).
The dotted metric names are a stable public contract documented in
README.md ("Observability") and DESIGN.md §7.

Observability v2 (DESIGN.md §11) adds three coupled subsystems:

* :class:`SpanTracker` / :class:`OpSpan` — per-operation latency
  attribution (latch wait vs lock wait vs I/O vs WAL vs CPU), enabled
  with ``Database(op_tracing=True)``;
* :class:`FlightRecorder` — an always-on bounded black box of recent
  rare events, dumped as replayable JSONL on failed chaos trials,
  lockdep hard violations and deadlock-victim selection;
* :class:`HistoryRecorder` + :func:`check_linearizability` /
  :func:`check_read_committed` — invocation/response histories checked
  mechanically for per-element linearizability.
"""

from repro.obs.export import (
    NONDETERMINISTIC_FIELDS,
    canonical_events,
    dump_jsonl,
    dumps_line,
    load_jsonl,
)
from repro.obs.flightrec import FlightEvent, FlightRecorder
from repro.obs.history import (
    HistoryOp,
    HistoryRecorder,
    OracleReport,
    check_linearizability,
    check_read_committed,
)
from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LatchTimer,
    MetricsRegistry,
)
from repro.obs.spans import OpSpan, SpanTracker
from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistoryOp",
    "HistoryRecorder",
    "LatchTimer",
    "MetricsRegistry",
    "NONDETERMINISTIC_FIELDS",
    "OpSpan",
    "OracleReport",
    "SpanTracker",
    "TraceEvent",
    "Tracer",
    "canonical_events",
    "check_linearizability",
    "check_read_committed",
    "dump_jsonl",
    "dumps_line",
    "load_jsonl",
]
