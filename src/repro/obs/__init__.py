"""Unified observability layer: metrics registry + structured tracer.

Every subsystem (latches, locks, buffer pool, WAL, trees, recovery)
reports into one :class:`MetricsRegistry` owned by the
:class:`~repro.database.Database` (``db.metrics``); operation spans and
protocol events land in its :class:`Tracer` (``db.metrics.tracer``).
The dotted metric names are a stable public contract documented in
README.md ("Observability") and DESIGN.md §7.
"""

from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LatchTimer,
    MetricsRegistry,
)
from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "LatchTimer",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
]
