"""Always-on flight recorder: a bounded black box of recent rare events.

An aircraft flight recorder does not sample the airflow over every
rivet; it keeps the last few minutes of the *decisions* — and that is
the contract here.  Subsystems record only rare, semantically heavy
events (transaction begin/commit/abort, structure modifications,
deadlock-victim selection, lockdep hard violations, crash/restart
boundaries), so the recorder can stay on in every configuration within
a fixed extra-calls budget (gated in ``benchmarks/bench_obs_overhead``).

Storage is a ring ``deque`` per recording thread — an append takes no
shared lock — plus one global ``itertools.count`` sequence number whose
``next()`` is atomic under the GIL, giving every event a total order
that survives the per-thread sharding.  :meth:`FlightRecorder.dump`
writes the merged ring contents as canonical JSONL (the *black box*);
:meth:`FlightRecorder.canonical` reduces a dump to its deterministic
``(seq, name, data)`` core so a seeded single-threaded chaos trial can
be replayed and compared bit-for-bit (timestamps and thread idents are
excluded — they are the only fields allowed to vary between runs of
the same seed).

The recorder deliberately survives :meth:`~repro.database.Database.crash`
and :meth:`~repro.database.Database.restart` — the black box is the
external observer, not volatile state — so a dump taken after a failed
recovery still shows the pre-crash events that led up to it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from repro.obs.export import canonical_events, dump_jsonl

__all__ = ["FlightEvent", "FlightRecorder"]


class FlightEvent:
    """One recorded flight event (globally sequenced)."""

    __slots__ = ("seq", "ts_ns", "thread", "name", "data")

    def __init__(
        self,
        seq: int,
        ts_ns: int,
        thread: int,
        name: str,
        data: dict | None,
    ) -> None:
        self.seq = seq
        self.ts_ns = ts_ns
        self.thread = thread
        self.name = name
        self.data = data or {}

    def as_dict(self) -> dict:
        """The event as a plain JSONL-ready dict."""
        out = {
            "seq": self.seq,
            "ts_ns": self.ts_ns,
            "thread": self.thread,
            "name": self.name,
        }
        if self.data:
            out["data"] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightEvent(#{self.seq} {self.name!r})"


class _Ring:
    """One thread's private event ring plus its exact write counter."""

    __slots__ = ("events", "writes", "lock")

    def __init__(self, capacity: int) -> None:
        self.events: deque[FlightEvent] = deque(maxlen=capacity)
        #: exact (thread-private mutation, merged under the recorder
        #: lock) — the bench budget gate reads this, not ``len()``,
        #: because the ring forgets what it overwrote
        self.writes = 0
        #: guards snapshot/clear against the owner's concurrent appends
        self.lock = threading.Lock()


class FlightRecorder:
    """Bounded per-thread rings of recent structured events.

    Parameters
    ----------
    capacity:
        Events retained *per recording thread*; older events are
        overwritten.  The black box is a window, not a log.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._seq = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._rings: list[_Ring] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _ring(self) -> _Ring:
        try:
            return self._local.ring
        except AttributeError:
            ring = _Ring(self.capacity)
            with self._lock:
                self._rings.append(ring)
            self._local.ring = ring
            return ring

    def record(self, name: str, **data: object) -> None:
        """Record one event on the calling thread's ring.

        Safe to call from leaf positions (under a subsystem mutex, from
        the lockdep witness): the only locks taken are the ring's own
        guard (contended only against a concurrent :meth:`dump`) and —
        once per thread, at ring registration — the recorder's.
        """
        ring = self._ring()
        event = FlightEvent(
            next(self._seq),
            time.perf_counter_ns(),
            threading.get_ident(),
            name,
            data or None,
        )
        with ring.lock:
            ring.events.append(event)
            ring.writes += 1

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def events(self) -> list[FlightEvent]:
        """All retained events, merged across threads in sequence order."""
        with self._lock:
            rings = list(self._rings)
        merged: list[FlightEvent] = []
        for ring in rings:
            with ring.lock:
                merged.extend(ring.events)
        merged.sort(key=lambda e: e.seq)
        return merged

    def last(self, n: int) -> list[FlightEvent]:
        """The most recent ``n`` events across all threads."""
        events = self.events()
        return events[-n:] if n > 0 else []

    def writes(self) -> int:
        """Exact number of events ever recorded (bench budget gate)."""
        with self._lock:
            rings = list(self._rings)
        total = 0
        for ring in rings:
            with ring.lock:
                total += ring.writes
        return total

    def clear(self) -> None:
        """Drop every retained event (rings stay registered)."""
        with self._lock:
            rings = list(self._rings)
        for ring in rings:
            with ring.lock:
                ring.events.clear()

    def __len__(self) -> int:
        with self._lock:
            rings = list(self._rings)
        total = 0
        for ring in rings:
            with ring.lock:
                total += len(ring.events)
        return total

    # ------------------------------------------------------------------
    # black box
    # ------------------------------------------------------------------
    def dump(self, path: str) -> str:
        """Write the merged ring contents to ``path`` as canonical JSONL."""
        return dump_jsonl(path, (e.as_dict() for e in self.events()))

    def canonical(self) -> list[tuple[int, str, str]]:
        """The deterministic replay core of the current ring contents."""
        return canonical_events([e.as_dict() for e in self.events()])
