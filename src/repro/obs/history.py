"""History recorder + linearizability oracle for index operations.

Every scenario or chaos run so far produced a throughput number and an
end-state check; this module turns a run into a **pass/fail correctness
verdict** over the *concurrent* history, in the spirit of ROADMAP item 5
(Feldman et al., "Proving Highly-Concurrent Traversals Correct",
arXiv:2010.00911): record one invocation/response interval per completed
operation, then mechanically decide whether some legal sequential order
explains every observed result.

The decomposition that makes this tractable is exact, not heuristic.
The index is a set of ``(key, rid)`` pairs and rids are unique across a
workload (the generator guarantees it), so the set decomposes into
independent boolean registers — one per element ``(key, rid)``, initial
value ``False``:

* ``insert(key, rid)``  — write ``True``
* ``delete(key, rid)``  — write ``False`` (a delete that found nothing
  is a *read* of ``False``: it observed absence)
* ``search(q)``         — for every element whose key ``q`` covers, a
  read of ``True`` (rid in the result) or ``False`` (rid absent)

A set history is linearizable iff every per-element register history is
linearizable (operations on distinct elements commute), and each tiny
register history is decided exactly with a memoized Wing & Gong search:
worst case ``O(k * 2^k)`` for the ``k`` operations touching one element
— in practice near-linear, since ``k`` is small (one insert, at most
one delete, the few reads whose query covers the key) and equal-value
reads commute.  :func:`check_read_committed` is the weaker per-read
interval check (no cross-read ordering), matching what READ COMMITTED
actually promises.

Timestamps are ``perf_counter_ns`` monotonic values taken on the
recording host: ``inv_ns`` just before the operation (its transaction)
is issued, ``resp_ns`` after its commit returns.  Operations of aborted
transactions left no effect and must not be recorded.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.export import dump_jsonl

__all__ = [
    "HistoryOp",
    "HistoryRecorder",
    "OracleReport",
    "check_linearizability",
    "check_read_committed",
]


@dataclass(frozen=True)
class HistoryOp:
    """One completed operation in a recorded history."""

    op_id: int
    kind: str  # "insert" | "delete" | "search"
    inv_ns: int
    resp_ns: int
    key: object = None
    rid: object = None
    query: object = None
    #: insert/delete: ``True`` when the op took effect, ``False`` when a
    #: delete found nothing; search: the frozenset of returned rids
    result: object = None

    def as_dict(self) -> dict:
        """The op as a JSONL-ready dict."""
        out = {
            "op_id": self.op_id,
            "kind": self.kind,
            "inv_ns": self.inv_ns,
            "resp_ns": self.resp_ns,
        }
        if self.key is not None:
            out["key"] = self.key
        if self.rid is not None:
            out["rid"] = self.rid
        if self.query is not None:
            out["query"] = repr(self.query)
        if self.kind == "search":
            out["result"] = sorted(self.result or (), key=repr)
        elif self.result is not None:
            out["result"] = self.result
        return out


class HistoryRecorder:
    """Thread-safe accumulator of :class:`HistoryOp` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._ops: list[HistoryOp] = []

    def add(
        self,
        kind: str,
        *,
        inv_ns: int,
        resp_ns: int,
        key: object = None,
        rid: object = None,
        query: object = None,
        result: object = None,
    ) -> HistoryOp:
        """Record one completed operation; returns the stored record."""
        if kind == "search":
            result = frozenset(result or ())
        op = HistoryOp(
            op_id=next(self._ids),
            kind=kind,
            inv_ns=inv_ns,
            resp_ns=resp_ns,
            key=key,
            rid=rid,
            query=query,
            result=result,
        )
        with self._lock:
            self._ops.append(op)
        return op

    def ops(self) -> list[HistoryOp]:
        """All recorded operations, in invocation order."""
        with self._lock:
            out = list(self._ops)
        out.sort(key=lambda o: o.inv_ns)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._ops)

    def export_jsonl(self, path: str) -> str:
        """Dump the history to ``path`` as canonical JSONL."""
        return dump_jsonl(path, (op.as_dict() for op in self.ops()))


@dataclass
class OracleReport:
    """Verdict of a history check."""

    mode: str = "linearizability"
    elements: int = 0
    reads: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "PASS" if self.ok else "FAIL"
        head = (
            f"{self.mode}: {verdict} ({self.elements} elements, "
            f"{self.reads} reads checked)"
        )
        if self.ok:
            return head
        return head + "".join(f"\n  {v}" for v in self.violations)


#: one register operation: (inv, resp, is_write, value, op_id)
_RegOp = tuple[int, int, bool, bool, int]


def _element_histories(
    ops: Sequence[HistoryOp], covers: Callable[[object, object], bool]
) -> dict[tuple, list[_RegOp]]:
    """Split a set history into per-element register histories."""
    elements: dict[tuple, list[_RegOp]] = {}
    writes = [op for op in ops if op.kind in ("insert", "delete")]
    searches = [op for op in ops if op.kind == "search"]
    for op in writes:
        elem = (op.key, op.rid)
        took_effect = op.result is not False
        if op.kind == "insert":
            entry = (op.inv_ns, op.resp_ns, True, True, op.op_id)
        elif took_effect:
            entry = (op.inv_ns, op.resp_ns, True, False, op.op_id)
        else:
            # a delete that found nothing observed the element absent
            entry = (op.inv_ns, op.resp_ns, False, False, op.op_id)
        elements.setdefault(elem, []).append(entry)
    for op in searches:
        present: frozenset = op.result  # type: ignore[assignment]
        for elem in elements:
            key, rid = elem
            if not covers(op.query, key):
                continue
            elements[elem].append(
                (op.inv_ns, op.resp_ns, False, rid in present, op.op_id)
            )
    return elements


def _register_linearizable(ops: list[_RegOp]) -> bool:
    """Exact Wing & Gong check of one boolean register, initial False.

    Memoized on (remaining-op set, register value); an op may be
    linearized first among the remaining ones iff no other remaining op
    responded before it was invoked.
    """
    n = len(ops)
    failed: set[tuple[frozenset, bool]] = set()

    def dfs(remaining: frozenset, value: bool) -> bool:
        if not remaining:
            return True
        state = (remaining, value)
        if state in failed:
            return False
        min_resp = min(ops[i][1] for i in remaining)
        for i in remaining:
            inv, _resp, is_write, v, _oid = ops[i]
            if inv > min_resp:
                continue  # some remaining op wholly precedes this one
            if is_write:
                if dfs(remaining - {i}, v):
                    return True
            elif v == value and dfs(remaining - {i}, value):
                return True
        failed.add(state)
        return False

    return dfs(frozenset(range(n)), False)


def check_linearizability(
    ops: Sequence[HistoryOp], covers: Callable[[object, object], bool]
) -> OracleReport:
    """Decide per-element linearizability of a recorded set history.

    ``covers(query, key)`` is the domain predicate — whether a search
    query's range includes ``key`` (e.g.
    ``lambda q, k: q.contains(k)`` for B-tree intervals).
    """
    report = OracleReport(mode="linearizability")
    for elem, regops in sorted(
        _element_histories(ops, covers).items(), key=lambda kv: repr(kv[0])
    ):
        report.elements += 1
        report.reads += sum(1 for o in regops if not o[2])
        if not _register_linearizable(regops):
            key, rid = elem
            ordered = sorted(regops)
            trace = ", ".join(
                f"op{oid}:{'W' if w else 'R'}({v})"
                for _inv, _resp, w, v, oid in ordered
            )
            report.violations.append(
                f"element (key={key!r}, rid={rid!r}) has no "
                f"linearization: [{trace}]"
            )
    return report


def check_read_committed(
    ops: Sequence[HistoryOp], covers: Callable[[object, object], bool]
) -> OracleReport:
    """The weaker per-read interval check (READ COMMITTED conformance).

    Each read must individually be explainable by *some* committed
    write state overlapping its interval; unlike linearizability, no
    single total order across reads is required, so stale-but-committed
    reads pass.  Violations here are unconditional bugs at every
    isolation level.
    """
    report = OracleReport(mode="read-committed")
    for elem, regops in sorted(
        _element_histories(ops, covers).items(), key=lambda kv: repr(kv[0])
    ):
        report.elements += 1
        insert = next(
            (o for o in regops if o[2] and o[3]), None
        )
        delete = next(
            (o for o in regops if o[2] and not o[3]), None
        )
        for inv, resp, is_write, value, oid in regops:
            if is_write:
                continue
            report.reads += 1
            key, rid = elem
            if value:
                # saw the element: the insert must have been invoked
                # before the read responded, and the delete (if any)
                # must not have responded before the read was invoked
                if insert is None or resp < insert[0] or (
                    delete is not None and inv > delete[1]
                ):
                    report.violations.append(
                        f"op{oid} read (key={key!r}, rid={rid!r}) "
                        "present outside its committed lifetime"
                    )
            else:
                # missed the element: must be placeable before the
                # insert committed or after the delete was invoked
                after_insert = insert is not None and inv > insert[1]
                before_delete = delete is None or resp < delete[0]
                if after_insert and before_delete:
                    report.violations.append(
                        f"op{oid} read (key={key!r}, rid={rid!r}) "
                        "absent although committed and not yet deleted"
                    )
    return report
