"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

The registry is the measurement substrate for every subsystem (latches,
locks, buffer pool, WAL, trees): all of them register named instruments
here, and :meth:`MetricsRegistry.snapshot` assembles one nested dict the
benchmarks, ``tools/inspect.dump_stats`` and the JSON exporter consume.

Design constraints (see ISSUE 1 / DESIGN.md "Observability"):

* **Update cost** — a metric update on the hot path must be a plain
  ``+=`` with no shared lock: counters and histograms keep *per-thread
  shards* (one small object per thread, registered once), and the only
  synchronization is at shard registration and at snapshot time.  Under
  the GIL a concurrent ``shard.value += n`` against a snapshot read is
  safe; the snapshot may be a few increments stale, never corrupt.
* **Stable names** — instruments are addressed by dotted names
  (``buffer.hits``, ``latch.wait_ns``, ``gist.restarts.nsn_mismatch``)
  that form a public contract; the snapshot nests along the dots.
* **Disablable** — a registry built with ``enabled=False`` hands out
  shared null instruments whose updates are no-ops, so the whole layer
  can be benchmarked against its own absence
  (``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Callable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatchTimer",
    "MetricsRegistry",
    "DEFAULT_NS_BUCKETS",
    "merge_snapshots",
]

#: Default histogram bucket upper bounds, in nanoseconds: half-decade
#: steps from 1 µs to 10 s (an overflow bucket catches the rest).
DEFAULT_NS_BUCKETS: tuple[int, ...] = (
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
)


class _CounterShard:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class Counter:
    """A monotonic counter with per-thread shards.

    ``inc`` touches only the calling thread's shard (a plain ``+=``);
    ``value`` merges all shards under the registration lock.  Shards of
    finished threads stay registered, so their contribution survives.
    """

    __slots__ = ("name", "_local", "_lock", "_shards")

    def __init__(self, name: str) -> None:
        self.name = name
        self._local = threading.local()
        self._lock = threading.Lock()
        self._shards: list[_CounterShard] = []

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (thread-safe, no shared lock on the hot path)."""
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._register_shard()
        shard.value += amount

    def _register_shard(self) -> _CounterShard:
        shard = _CounterShard()
        with self._lock:
            self._shards.append(shard)
        self._local.shard = shard
        return shard

    @property
    def value(self) -> int:
        """Merged total across every thread's shard."""
        with self._lock:
            return sum(shard.value for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        return


class Gauge:
    """A point-in-time value, read through a callable at snapshot time."""

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self.name = name
        self._fn = fn

    @property
    def value(self) -> object:
        """Evaluate the gauge; errors surface as ``None``, never raise."""
        try:
            return self._fn()
        except Exception:
            return None  # lint: allow(swallowed-fault): gauges never raise by contract


class _HistShard:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * nbuckets
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None


class Histogram:
    """A fixed-bucket latency histogram with per-thread shards.

    Bucket ``i`` holds values ``bounds[i-1] < v <= bounds[i]``; one
    overflow bucket past the last bound catches the rest.  Percentiles
    are estimated by linear interpolation inside the covering bucket
    (the overflow bucket interpolates toward the observed maximum).
    """

    __slots__ = ("name", "bounds", "_local", "_lock", "_shards")

    def __init__(
        self, name: str, bounds: Sequence[int] = DEFAULT_NS_BUCKETS
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(bounds)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._shards: list[_HistShard] = []

    def record(self, value: float) -> None:
        """Record one observation (thread-safe, lock-free fast path)."""
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._register_shard()
        shard.counts[bisect_left(self.bounds, value)] += 1
        shard.count += 1
        shard.sum += value
        if shard.min is None or value < shard.min:
            shard.min = value
        if shard.max is None or value > shard.max:
            shard.max = value

    def _register_shard(self) -> _HistShard:
        shard = _HistShard(len(self.bounds) + 1)
        with self._lock:
            self._shards.append(shard)
        self._local.shard = shard
        return shard

    # ------------------------------------------------------------------
    # merged views
    # ------------------------------------------------------------------
    def _merged(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            shards = list(self._shards)
        counts = [0] * (len(self.bounds) + 1)
        total = 0
        total_sum = 0
        lo = hi = None
        for shard in shards:
            for i, c in enumerate(shard.counts):
                counts[i] += c
            total += shard.count
            total_sum += shard.sum
            if shard.min is not None and (lo is None or shard.min < lo):
                lo = shard.min
            if shard.max is not None and (hi is None or shard.max > hi):
                hi = shard.max
        return counts, total, total_sum, lo or 0, hi or 0

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return self._merged()[1]

    def percentile(self, q: float) -> float:
        """Estimate the q-quantile (0 < q <= 1) from the bucket counts."""
        counts, total, _, lo_seen, hi_seen = self._merged()
        return self._percentile_from(counts, total, q, lo_seen, hi_seen)

    def _percentile_from(
        self,
        counts: list[int],
        total: int,
        q: float,
        lo_seen: float,
        hi_seen: float,
    ) -> float:
        if total == 0:
            return 0.0
        target = q * total
        cum = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            prev = cum
            cum += c
            if cum >= target:
                lo = self.bounds[i - 1] if i > 0 else lo_seen
                hi = self.bounds[i] if i < len(self.bounds) else hi_seen
                fraction = (target - prev) / c
                value = lo + fraction * (hi - lo)
                return float(min(max(value, lo_seen), hi_seen))
        return float(hi_seen)

    def snapshot(self) -> dict:
        """Count, sum, min/max/avg and p50/p95/p99 as one dict."""
        counts, total, total_sum, lo, hi = self._merged()
        if total == 0:
            return {
                "count": 0,
                "sum": 0,
                "min": 0,
                "max": 0,
                "avg": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": total,
            "sum": total_sum,
            "min": lo,
            "max": hi,
            "avg": total_sum / total,
            "p50": self._percentile_from(counts, total, 0.50, lo, hi),
            "p95": self._percentile_from(counts, total, 0.95, lo, hi),
            "p99": self._percentile_from(counts, total, 0.99, lo, hi),
        }


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by disabled registries."""

    def record(self, value: float) -> None:  # noqa: ARG002
        return


class LatchTimer:
    """The instrument bundle a latch (or a family of latches) records
    into: acquisition count plus wait-time and hold-time histograms.

    Built over a registry so every frame latch of a buffer pool shares
    one ``latch.*`` family; :class:`~repro.sync.latch.SXLatch` only sees
    this narrow object, keeping ``sync`` free of an ``obs`` dependency.

    Latch acquisitions are the hottest instrumented path in the system
    (every pin/fix pair goes through two of them), so everything is
    sampled: :meth:`sample` admits one acquisition in ``SAMPLE_EVERY``
    to the clock reads and histogram records, and the acquisition
    counter is bumped in the same batches (``inc(SAMPLE_EVERY)`` once
    per cycle), so ``latch.acquisitions`` counts acquisition *attempts*
    and may trail the truth by up to ``SAMPLE_EVERY - 1`` per timer.
    Exact per-latch counts stay available on
    :attr:`repro.sync.latch.SXLatch.acquisitions`.  The tick is bumped
    without a lock; under the GIL a lost increment merely shifts the
    sampling phase.
    """

    __slots__ = ("acquisitions", "wait_ns", "hold_ns", "_tick")

    #: timing sample rate — 1 in this many acquisitions is timed
    SAMPLE_EVERY = 16

    def __init__(
        self, registry: "MetricsRegistry", prefix: str = "latch"
    ) -> None:
        self.acquisitions = registry.counter(f"{prefix}.acquisitions")
        self.wait_ns = registry.histogram(f"{prefix}.wait_ns")
        self.hold_ns = registry.histogram(f"{prefix}.hold_ns")
        self._tick = 0

    def sample(self) -> bool:
        """True when this acquisition should be timed.

        Also counts: each full cycle through the tick adds
        ``SAMPLE_EVERY`` to the acquisitions counter, batching the
        registry work the same way the timing is batched.
        """
        tick = self._tick = (self._tick + 1) % self.SAMPLE_EVERY
        if tick == 0:
            self.acquisitions.inc(self.SAMPLE_EVERY)
            return True
        return False


_NULL_COUNTER = _NullCounter("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named counters, gauges and histograms with a nested snapshot.

    Instruments are created on first request (``counter(name)`` is
    get-or-create), so independent subsystems can share one family by
    using the same dotted name.  A disabled registry (``enabled=False``)
    hands out shared null instruments and snapshots empty — the shape
    benchmarked by ``bench_obs_overhead.py``.
    """

    def __init__(
        self, enabled: bool = True, trace_capacity: int = 1024
    ) -> None:
        self.enabled = enabled
        self.trace_capacity = trace_capacity
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # imported here to avoid a cycle at module import time
        from repro.obs.tracer import Tracer

        self.tracer = Tracer(capacity=trace_capacity, enabled=enabled)

    # ------------------------------------------------------------------
    # instrument creation (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_NS_BUCKETS
    ) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name, bounds)
            return hist

    def gauge(self, name: str, fn: Callable[[], object]) -> Gauge:
        """Register (or replace) a gauge evaluated at snapshot time."""
        gauge = Gauge(name, fn)
        if not self.enabled:
            return gauge
        with self._lock:
            self._gauges[name] = gauge
        return gauge

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one nested dict, keyed along dotted names.

        Safe to call while every counter and histogram is being mutated:
        values may trail in-flight increments but are never corrupt.
        """
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
            gauges = list(self._gauges.values())
        out: dict = {}
        for counter in counters:
            _assign(out, counter.name, counter.value)
        for hist in histograms:
            _assign(out, hist.name, hist.snapshot())
        for gauge in gauges:
            _assign(out, gauge.name, gauge.value)
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        """The snapshot serialized as JSON (for BENCH_*.json artifacts)."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 if never registered)."""
        with self._lock:
            counter = self._counters.get(name)
        return counter.value if counter is not None else 0


def _assign(tree: dict, dotted: str, value: object) -> None:
    parts = dotted.split(".")
    node = tree
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = node[part] = {}
        node = nxt
    node[parts[-1]] = value


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Sum a sequence of nested metric snapshots into one aggregate.

    The cluster front end gathers one ``db.metrics.snapshot()`` per
    partition worker; this folds them into a single cluster-wide view:
    numeric leaves are summed, nested dicts are merged recursively, and
    non-numeric leaves (labels, paths) keep the first value seen.
    Booleans are deliberately *not* treated as numbers — summing flags
    across partitions would manufacture meaningless counts.
    """
    out: dict = {}
    for snap in snapshots:
        _merge_into(out, snap)
    return out


def _merge_into(target: dict, source: dict) -> None:
    for key, value in source.items():
        if isinstance(value, dict):
            node = target.get(key)
            if not isinstance(node, dict):
                node = target[key] = {}
            _merge_into(node, value)
        elif isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            prior = target.get(key, 0)
            if isinstance(prior, (int, float)) and not isinstance(
                prior, bool
            ):
                target[key] = prior + value
            else:
                target[key] = value
        else:
            target.setdefault(key, value)
