"""AST-based protocol linter for the latch/pin/fault discipline.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint src/repro

Rules (see DESIGN.md §10 for the paper citations):

``latch-release``
    Every latch/mutex ``acquire()`` and every ``pool.fix()`` must be
    released on all paths — the call must sit inside (or be the
    statement immediately before) a ``try`` whose ``finally`` or
    handlers perform the release, or inside a ``with`` manager.
``pin-balance``
    Every ``pin()`` must be paired with ``unpin()``/``unfix()`` on all
    exit paths, under the same structural criterion.
``io-under-latch``
    No I/O-class call (``PageStore.read``/``write``, ``_io_stall``,
    ``time.sleep``) lexically inside a latch- or mutex-held region.
``lock-wait-under-latch``
    No blocking ``LockManager.acquire`` (without ``wait=False``)
    lexically inside a latch-held region.
``bare-except``
    No bare ``except:`` clauses.
``swallowed-fault``
    No trivial handler (``pass``/``continue``/``return None``) that
    catches ``StorageFaultError`` or anything broader without
    re-raising — storage faults must surface or be handled for real.

Suppressions: ``# lint: allow(rule)`` or ``# lint: allow(rule): why``
on the offending line silences that rule there; on a ``def`` line it
silences the rule for the whole function (used for hand-over-hand
crabbing and ownership-transfer helpers, where release-on-all-paths is
a caller obligation).  ``# lint: allow-file(rule)`` anywhere in a file
silences the rule file-wide (used by the deliberately-unsafe
baselines).  Every suppression doubles as protocol documentation.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

RULES: dict[str, str] = {
    "latch-release": "latch/mutex acquire not released on all paths",
    "pin-balance": "pin() not paired with unpin()/unfix() on all paths",
    "io-under-latch": "I/O-class call inside a latch/mutex-held region",
    "lock-wait-under-latch": "blocking lock wait inside a latch-held "
    "region",
    "bare-except": "bare `except:` clause",
    "swallowed-fault": "StorageFaultError swallowed by a trivial "
    "handler",
}

#: exception names that catch StorageFaultError (itself, its subtypes'
#: common parents, or anything broader)
FAULT_CATCHERS = frozenset(
    {
        "StorageFaultError",
        "PageError",
        "ReproError",
        "Exception",
        "BaseException",
    }
)

#: method names whose presence in a finally/handler counts as cleanup
CLEANUP_ATTRS = frozenset(
    {"release", "unfix", "unpin", "release_thread_fixes", "close"}
)

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")
_ALLOW_FILE_RE = re.compile(r"#\s*lint:\s*allow-file\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


# ----------------------------------------------------------------------
# helpers


def _receiver(call: ast.Call) -> str:
    """Source text of the attribute receiver (``a.b`` for ``a.b.c()``)."""
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - defensive
            return ""
    return ""


def _attr(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _kw(call: ast.Call, name: str):
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_false(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def _is_latch_acquire(call: ast.Call) -> bool:
    """``x.acquire(...)`` where the receiver looks like a latch/mutex."""
    if _attr(call) != "acquire":
        return False
    recv = _receiver(call).lower()
    return any(
        token in recv for token in ("latch", "lock", "mutex", "cond")
    ) and "locks" not in recv


def _is_lock_acquire(call: ast.Call) -> bool:
    """Transactional ``LockManager.acquire`` (deadlock-detected side)."""
    if _attr(call) != "acquire":
        return False
    recv = _receiver(call).lower()
    return "locks" in recv or recv.endswith("lock_manager")


def _is_fix(call: ast.Call) -> bool:
    return _attr(call) == "fix"


def _is_pin(call: ast.Call) -> bool:
    return _attr(call) == "pin"


def _is_io_call(call: ast.Call) -> bool:
    attr = _attr(call)
    recv = _receiver(call).lower()
    if attr in {"read", "write"} and "store" in recv:
        return True
    if attr == "sleep":  # time.sleep / module-level sleep
        return True
    if attr == "_io_stall":
        return True
    return False


def _contains_cleanup(nodes: list[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _attr(node) in CLEANUP_ATTRS:
                return True
    return False


# ----------------------------------------------------------------------
# per-file checker


class _FileChecker:
    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self.line_allows: dict[int, set[str]] = {}
        self.file_allows: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _ALLOW_RE.search(line)
            if m:
                rules = {
                    r.strip() for r in m.group(1).split(",") if r.strip()
                }
                self.line_allows.setdefault(lineno, set()).update(rules)
            m = _ALLOW_FILE_RE.search(line)
            if m:
                self.file_allows.update(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
        # parent links + enclosing-function map
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    # -- suppression ----------------------------------------------------

    def _allowed(self, rule: str, node: ast.AST) -> bool:
        if rule in self.file_allows or "*" in self.file_allows:
            return True
        lines = {getattr(node, "lineno", 0)}
        end = getattr(node, "end_lineno", None)
        if end is not None:
            lines.add(end)
        for line in lines:
            allows = self.line_allows.get(line, ())
            if rule in allows or "*" in allows:
                return True
        # def-level allow covers the whole function body
        fn = self._enclosing_function(node)
        while fn is not None:
            allows = self.line_allows.get(fn.lineno, ())
            if rule in allows or "*" in allows:
                return True
            fn = self._enclosing_function(fn)
        return False

    def _enclosing_function(self, node: ast.AST):
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if self._allowed(rule, node):
            return
        self.findings.append(
            Finding(str(self.path), node.lineno, rule, message)
        )

    # -- structural protection ------------------------------------------

    def _protected(self, node: ast.AST) -> bool:
        """True if the acquisition at ``node`` is structurally released.

        Accepted shapes: the call is inside the body of a ``try`` whose
        ``finally`` or handlers contain a cleanup call; the statement
        *immediately after* the call's statement is such a ``try`` (the
        canonical ``x = acquire(); try: ... finally: release(x)``
        idiom); or the call sits in a ``with`` item (context manager
        owns the release).
        """
        # inside a with-item: the manager releases
        cur: ast.AST | None = node
        while cur is not None:
            parent = self.parents.get(cur)
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, ast.Try):
                in_body = any(
                    cur is stmt or self._is_descendant(cur, stmt)
                    for stmt in parent.body
                )
                if in_body and self._try_cleans_up(parent):
                    return True
            cur = parent
        # next-sibling try/finally, checked at every enclosing statement
        # level up to the function boundary: covers both
        #   x = acquire(); try: ... finally: release(x)
        # and
        #   try: x = acquire() except PageError: return
        #   try: ... finally: release(x)
        cur = node
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(cur, ast.stmt):
                parent = self.parents.get(cur)
                for fieldname in ("body", "orelse", "finalbody"):
                    block = getattr(parent, fieldname, None)
                    if isinstance(block, list) and cur in block:
                        idx = block.index(cur)
                        if idx + 1 < len(block):
                            nxt = block[idx + 1]
                            if isinstance(nxt, ast.Try) and (
                                self._try_cleans_up(nxt)
                            ):
                                return True
            cur = self.parents.get(cur)
        return False

    @staticmethod
    def _try_cleans_up(try_node: ast.Try) -> bool:
        if _contains_cleanup(try_node.finalbody):
            return True
        for handler in try_node.handlers:
            if _contains_cleanup(handler.body):
                return True
        return False

    def _is_descendant(self, node: ast.AST, ancestor: ast.AST) -> bool:
        cur = node
        while cur is not None:
            if cur is ancestor:
                return True
            cur = self.parents.get(cur)
        return False

    # -- passes ---------------------------------------------------------

    def run(self) -> list[Finding]:
        self._check_acquire_release()
        self._check_handlers()
        self._check_regions()
        return self.findings

    def _check_acquire_release(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_latch_acquire(node) or _is_fix(node):
                nowait = _kw(node, "nowait")
                if nowait is not None and not _is_false(nowait):
                    # conditional grant: the caller must branch on the
                    # result; structural pairing can't be checked here
                    continue
                if not self._protected(node):
                    what = (
                        f"{_receiver(node)}.{_attr(node)}" or _attr(node)
                    )
                    self._report(
                        "latch-release",
                        node,
                        f"`{what}()` is not released on all paths "
                        "(wrap in try/finally, a context manager, or "
                        "follow immediately with a try whose cleanup "
                        "releases it)",
                    )
            elif _is_pin(node):
                if not self._protected(node):
                    self._report(
                        "pin-balance",
                        node,
                        f"`{_receiver(node)}.pin()` has no structurally "
                        "paired unpin()/unfix() on all exit paths",
                    )

    def _check_handlers(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Try):
                continue
            fault_reraised_earlier = False
            for handler in node.handlers:
                if handler.type is None:
                    self._report(
                        "bare-except",
                        handler,
                        "bare `except:` catches everything including "
                        "KeyboardInterrupt; name the exception",
                    )
                    continue
                names = self._handler_names(handler)
                catches_fault = bool(names & FAULT_CATCHERS)
                if (
                    catches_fault
                    and self._reraises(handler)
                    and names
                    & {"StorageFaultError", "PageError", "ReproError"}
                ):
                    fault_reraised_earlier = True
                    continue
                if (
                    catches_fault
                    and self._trivial_body(handler.body)
                    and not self._reraises(handler)
                    and not fault_reraised_earlier
                ):
                    self._report(
                        "swallowed-fault",
                        handler,
                        f"handler for {sorted(names)} silently discards "
                        "StorageFaultError; re-raise faults or handle "
                        "them explicitly",
                    )

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> set[str]:
        names: set[str] = set()
        node = handler.type
        items = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in items:
            if isinstance(item, ast.Name):
                names.add(item.id)
            elif isinstance(item, ast.Attribute):
                names.add(item.attr)
        return names

    @staticmethod
    def _trivial_body(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value in (None, False, True)
                )
            ):
                continue
            return False
        return True

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    # -- lexical latch-held regions -------------------------------------

    def _check_regions(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _RegionScanner(self).scan_function(node)


class _RegionScanner:
    """Straight-line scan of a function body tracking lexical latch
    depth; flags I/O-class calls and blocking lock waits while > 0."""

    #: with-item attribute names that open a held region
    _REGION_SUFFIXES = ("lock", "mutex", "cond", "_cv")

    def __init__(self, checker: _FileChecker) -> None:
        self.checker = checker
        self.depth = 0

    def scan_function(self, fn) -> None:
        self.depth = 0
        self._scan_block(fn.body)

    def _scan_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs scanned separately
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = 0
            for item in stmt.items:
                if self._with_item_holds(item.context_expr):
                    entered += 1
            self.depth += entered
            self._scan_block(stmt.body)
            self.depth = max(0, self.depth - entered)
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body)
            for handler in stmt.handlers:
                self._scan_block(handler.body)
            self._scan_block(stmt.orelse)
            self._scan_block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._visit_calls(stmt.test)
            self._scan_block(stmt.body)
            self._scan_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_calls(stmt.iter)
            self._scan_block(stmt.body)
            self._scan_block(stmt.orelse)
            return
        # simple statement: classify all calls in source order
        self._visit_calls(stmt)

    def _with_item_holds(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            attr = _attr(expr)
            if attr in {"fixed", "_locked", "locked"}:
                return True
            recv = _receiver(expr).lower()
            if attr == "acquire" and any(
                t in recv for t in ("latch", "mutex", "cond")
            ):
                return True
            return False
        try:
            text = ast.unparse(expr).lower()
        except Exception:  # lint: allow(swallowed-fault): AST guard
            return False
        return any(text.endswith(s) for s in self._REGION_SUFFIXES)

    def _visit_calls(self, node: ast.AST) -> None:
        calls = [
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            if self.depth > 0 and _is_io_call(call):
                self.checker._report(
                    "io-under-latch",
                    call,
                    f"I/O-class call `{_attr(call)}` inside a "
                    "latch/mutex-held region (paper §3 fn. 8: no latch "
                    "is ever held across an I/O)",
                )
            if self.depth > 0 and _is_lock_acquire(call):
                wait = _kw(call, "wait")
                if wait is None or not _is_false(wait):
                    self.checker._report(
                        "lock-wait-under-latch",
                        call,
                        "potentially-blocking lock acquire inside a "
                        "latch-held region (probe with wait=False or "
                        "release the latch first)",
                    )
            if _is_latch_acquire(call) or _is_fix(call):
                nowait = _kw(call, "nowait")
                if nowait is None or _is_false(nowait):
                    self.depth += 1
            elif _attr(call) == "unfix" or (
                _attr(call) == "release"
                and any(
                    t in _receiver(call).lower()
                    for t in ("latch", "mutex", "cond")
                )
            ):
                self.depth = max(0, self.depth - 1)
            elif _attr(call) == "release_thread_fixes":
                self.depth = 0


# ----------------------------------------------------------------------
# driver


def iter_py_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_file(path: Path) -> list[Finding]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                str(path),
                exc.lineno or 0,
                "parse-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    return _FileChecker(path, source, tree).run()


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_py_files(paths):
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="protocol linter for the latch/pin/fault discipline",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0

    findings = lint_paths(args.paths or ["src/repro"])
    for finding in findings:
        print(finding)
    n = len(findings)
    files = len(iter_py_files(args.paths or ["src/repro"]))
    print(
        f"{n} finding{'s' if n != 1 else ''} in {files} files",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
