"""AST-based protocol linter for the latch/pin/fault discipline.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint src/repro

Rules (see DESIGN.md §10/§15 for the paper citations):

``latch-release``
    Every latch/mutex ``acquire()`` and every ``pool.fix()`` must be
    released on all paths.  Since PR 10 this is verified by the
    *interprocedural* type-state pass (:mod:`repro.analysis.typestate`)
    — an acquisition is discharged either structurally (``try/finally``
    / ``with``) or by dataflow proof through function summaries, so
    crabbing helpers that transfer ownership to their caller verify
    without suppressions.
``pin-balance``
    Every ``pin()`` must be paired with ``unpin()``/``unfix()`` on all
    exit paths, under the same interprocedural criterion.
``io-under-latch``
    No I/O-class call (``PageStore.read``/``write``, ``_io_stall``,
    ``time.sleep``) lexically inside a latch- or mutex-held region.
``lock-wait-under-latch``
    No blocking ``LockManager.acquire`` (without ``wait=False``)
    lexically inside a latch-held region.
``bare-except``
    No bare ``except:`` clauses.
``swallowed-fault``
    No trivial handler (``pass``/``continue``/``return None``) that
    catches ``StorageFaultError`` or anything broader without
    re-raising — storage faults must surface or be handled for real.

Suppressions: ``# lint: allow(rule): why`` on the offending line
silences that rule there; on a ``def`` line it silences the rule for
the whole function.  ``# lint: allow-file(rule)`` anywhere in a file
silences the rule file-wide (used by the deliberately-unsafe
baselines).  Every suppression must carry a ``: why`` reason — the
``suppression-without-reason`` meta-rule in
:mod:`repro.analysis.rulepacks` flags reasonless ones.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

from repro.analysis.common import (
    Finding,
    SuppressionIndex,
    build_parent_map,
    call_attr as _attr,
    enclosing_function_lines,
    is_false_const as _is_false,
    is_fix as _is_fix,
    is_io_call as _is_io_call,
    is_latch_acquire as _is_latch_acquire,
    is_lock_acquire as _is_lock_acquire,
    iter_py_files,
    keyword_arg as _kw,
    receiver_text as _receiver,
)

__all__ = [
    "RULES",
    "Finding",
    "iter_py_files",
    "lint_file",
    "lint_paths",
    "main",
]

RULES: dict[str, str] = {
    "latch-release": "latch/mutex acquire not released on all paths "
    "(interprocedural)",
    "pin-balance": "pin() not paired with unpin()/unfix() on all paths "
    "(interprocedural)",
    "io-under-latch": "I/O-class call inside a latch/mutex-held region",
    "lock-wait-under-latch": "blocking lock wait inside a latch-held "
    "region",
    "bare-except": "bare `except:` clause",
    "swallowed-fault": "StorageFaultError swallowed by a trivial "
    "handler",
}

#: exception names that catch StorageFaultError (itself, its subtypes'
#: common parents, or anything broader)
FAULT_CATCHERS = frozenset(
    {
        "StorageFaultError",
        "PageError",
        "ReproError",
        "Exception",
        "BaseException",
    }
)


# ----------------------------------------------------------------------
# per-file checker (lexical rules only; latch-release / pin-balance are
# produced by the interprocedural engine in lint_paths/lint_file)


class _FileChecker:
    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self.supp = SuppressionIndex(source)
        self.parents = build_parent_map(tree)

    # -- suppression ----------------------------------------------------

    def _allowed(self, rule: str, node: ast.AST) -> bool:
        return self.supp.allows(
            rule, enclosing_function_lines(node, self.parents)
        )

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if self._allowed(rule, node):
            return
        self.findings.append(
            Finding(str(self.path), node.lineno, rule, message)
        )

    # -- passes ---------------------------------------------------------

    def run(self) -> list[Finding]:
        self._check_handlers()
        self._check_regions()
        return self.findings

    def _check_handlers(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Try):
                continue
            fault_reraised_earlier = False
            for handler in node.handlers:
                if handler.type is None:
                    self._report(
                        "bare-except",
                        handler,
                        "bare `except:` catches everything including "
                        "KeyboardInterrupt; name the exception",
                    )
                    continue
                names = self._handler_names(handler)
                catches_fault = bool(names & FAULT_CATCHERS)
                if (
                    catches_fault
                    and self._reraises(handler)
                    and names
                    & {"StorageFaultError", "PageError", "ReproError"}
                ):
                    fault_reraised_earlier = True
                    continue
                if (
                    catches_fault
                    and self._trivial_body(handler.body)
                    and not self._reraises(handler)
                    and not fault_reraised_earlier
                ):
                    self._report(
                        "swallowed-fault",
                        handler,
                        f"handler for {sorted(names)} silently discards "
                        "StorageFaultError; re-raise faults or handle "
                        "them explicitly",
                    )

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> set[str]:
        names: set[str] = set()
        node = handler.type
        items = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in items:
            if isinstance(item, ast.Name):
                names.add(item.id)
            elif isinstance(item, ast.Attribute):
                names.add(item.attr)
        return names

    @staticmethod
    def _trivial_body(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value in (None, False, True)
                )
            ):
                continue
            return False
        return True

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    # -- lexical latch-held regions -------------------------------------

    def _check_regions(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _RegionScanner(self).scan_function(node)


class _RegionScanner:
    """Straight-line scan of a function body tracking lexical latch
    depth; flags I/O-class calls and blocking lock waits while > 0."""

    #: with-item attribute names that open a held region
    _REGION_SUFFIXES = ("lock", "mutex", "cond", "_cv")

    def __init__(self, checker: _FileChecker) -> None:
        self.checker = checker
        self.depth = 0

    def scan_function(self, fn) -> None:
        self.depth = 0
        self._scan_block(fn.body)

    def _scan_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs scanned separately
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = 0
            for item in stmt.items:
                if self._with_item_holds(item.context_expr):
                    entered += 1
            self.depth += entered
            self._scan_block(stmt.body)
            self.depth = max(0, self.depth - entered)
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body)
            for handler in stmt.handlers:
                self._scan_block(handler.body)
            self._scan_block(stmt.orelse)
            self._scan_block(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._visit_calls(stmt.test)
            self._scan_block(stmt.body)
            self._scan_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_calls(stmt.iter)
            self._scan_block(stmt.body)
            self._scan_block(stmt.orelse)
            return
        # simple statement: classify all calls in source order
        self._visit_calls(stmt)

    def _with_item_holds(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            attr = _attr(expr)
            if attr in {"fixed", "_locked", "locked"}:
                return True
            recv = _receiver(expr).lower()
            if attr == "acquire" and any(
                t in recv for t in ("latch", "mutex", "cond")
            ):
                return True
            return False
        try:
            text = ast.unparse(expr).lower()
        except Exception:  # lint: allow(swallowed-fault): AST guard
            return False
        return any(text.endswith(s) for s in self._REGION_SUFFIXES)

    def _visit_calls(self, node: ast.AST) -> None:
        calls = [
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            if self.depth > 0 and _is_io_call(call):
                self.checker._report(
                    "io-under-latch",
                    call,
                    f"I/O-class call `{_attr(call)}` inside a "
                    "latch/mutex-held region (paper §3 fn. 8: no latch "
                    "is ever held across an I/O)",
                )
            if self.depth > 0 and _is_lock_acquire(call):
                wait = _kw(call, "wait")
                if wait is None or not _is_false(wait):
                    self.checker._report(
                        "lock-wait-under-latch",
                        call,
                        "potentially-blocking lock acquire inside a "
                        "latch-held region (probe with wait=False or "
                        "release the latch first)",
                    )
            if _is_latch_acquire(call) or _is_fix(call):
                nowait = _kw(call, "nowait")
                if nowait is None or _is_false(nowait):
                    self.depth += 1
            elif _attr(call) == "unfix" or (
                _attr(call) == "release"
                and any(
                    t in _receiver(call).lower()
                    for t in ("latch", "mutex", "cond")
                )
            ):
                self.depth = max(0, self.depth - 1)
            elif _attr(call) == "release_thread_fixes":
                self.depth = 0


# ----------------------------------------------------------------------
# driver


def _lexical_findings(files: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in files:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    str(path),
                    exc.lineno or 0,
                    "parse-error",
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        findings.extend(_FileChecker(path, source, tree).run())
    return findings


def lint_files(files: list[Path]) -> list[Finding]:
    """Lexical rules per file + one interprocedural type-state run
    over the whole file set."""
    from repro.analysis.typestate import check_paths

    findings = _lexical_findings(files)
    ts_findings, _engine = check_paths(files)
    findings.extend(ts_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: Path) -> list[Finding]:
    return lint_files([Path(path)])


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    return lint_files(iter_py_files(paths))


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="protocol linter for the latch/pin/fault discipline",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0

    findings = lint_paths(args.paths or ["src/repro"])
    for finding in findings:
        print(finding)
    n = len(findings)
    files = len(iter_py_files(args.paths or ["src/repro"]))
    print(
        f"{n} finding{'s' if n != 1 else ''} in {files} files",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
