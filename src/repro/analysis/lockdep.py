"""Runtime lock-order witness ("lockdep") for the latch/lock/WAL rules.

The paper's deadlock-freedom argument (§3, fn. 8) is *conditional*:
latches carry no deadlock detection, so the implementation must never
hold a latch across an I/O or across a lock wait, and must acquire
latches in a consistent global order.  None of that is visible in a
passing test run — an ABBA inversion deadlocks only under the right
interleaving, and a WAL-rule violation only corrupts state if the
crash lands in the window.  This module witnesses the *potential*
violation at the moment the ordering occurs, the same way the kernel's
lockdep proves a deadlock possible without ever hanging.

Design constraints:

* **Leaf lock.**  ``note_*`` methods are called while the caller holds
  latch condition variables, buffer-shard mutexes or the lock-manager
  mutex.  The witness therefore takes exactly one internal mutex and
  never calls back out, so it can never participate in a cycle itself.
* **Zero overhead when off.**  Nothing in the hot path touches this
  module unless a witness was attached (``Database(protocol_checks=
  True)``); the gating pattern mirrors ``GiST._fault_cleanup`` and is
  counter-asserted in ``benchmarks/bench_hotpath.py``.
* **Hard vs. warn.**  ``latch-lock-wait`` and ``wal-rule`` are *hard*
  violations: the shipped tree must never produce one (signaling locks
  are only ever probed no-wait under a latch, and the WAL rule is
  load-bearing for recovery).  ``latch-io`` and ``lock-order-cycle``
  are recorded as *warnings*: the pool intentionally performs miss
  reads and eviction writebacks while a caller holds a tree latch
  (the paper's Figure 4 does the same during SMOs), and cycle reports
  need human triage before they gate CI.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

#: resource-key kinds, in rough global acquisition order
KIND_LATCH = "latch"
KIND_SHARD = "shard"
KIND_LOCK = "lock"

#: rules recorded as hard violations (``violations``); everything else
#: lands in ``warnings``
HARD_RULES = frozenset({"latch-lock-wait", "wal-rule"})

_registry: weakref.WeakSet[LockdepWitness] = weakref.WeakSet()
_registry_mutex = threading.Lock()


@dataclass(frozen=True)
class ProtocolViolation:
    """One witnessed protocol violation (or warning)."""

    rule: str
    detail: str
    thread: int
    held: tuple[tuple[str, object], ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        held = ", ".join(f"{k}:{n}" for k, n in self.held)
        suffix = f" [held: {held}]" if held else ""
        return f"{self.rule}: {self.detail}{suffix}"


@dataclass
class ProtocolReport:
    """Snapshot of everything a witness has seen."""

    violations: list[ProtocolViolation] = field(default_factory=list)
    warnings: list[ProtocolViolation] = field(default_factory=list)
    cycles: list[tuple[tuple[str, object], ...]] = field(
        default_factory=list
    )
    edges: int = 0
    acquisitions: int = 0
    io_events: int = 0
    leaked_latches: dict[int, list[tuple[str, object]]] = field(
        default_factory=dict
    )
    leaked_pins: dict[int, list[object]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


class LockdepWitness:
    """Acquisition-graph witness over latches, shard mutexes and locks.

    Resources are keyed ``(kind, name)``: SXLatches by page id /
    explicit name, buffer-pool shards by shard index, lock-manager
    queues by lock name (waits only — transactional locks have their
    own deadlock detector; they matter here only when a *latch* is
    held across the wait).

    Per-thread held stacks feed a global directed edge set
    ``held -> acquired``; a cycle in that graph is a potential ABBA
    deadlock even if no run ever blocks on it.  Cycle search runs only
    when a previously-unseen edge appears, so steady-state overhead is
    one dict lookup per acquisition.
    """

    def __init__(self, flushed_lsn=None, flightrec=None) -> None:
        #: callable returning the WAL's flushed LSN, for the WAL-rule
        #: check on page writes; queried *before* taking the witness
        #: mutex so the log can use its own locking freely
        self.flushed_lsn = flushed_lsn
        #: optional :class:`repro.obs.flightrec.FlightRecorder`; hard
        #: violations are recorded as black-box events (the recorder is
        #: itself a leaf — it takes only its own ring lock — so calling
        #: it under the witness mutex cannot deadlock)
        self.flightrec = flightrec
        self._mutex = threading.Lock()
        self._held: dict[int, list[tuple[str, object]]] = {}
        self._pins: dict[int, list[object]] = {}
        self._edges: dict[tuple[str, object], set[tuple[str, object]]] = {}
        self._edge_cache: set[
            tuple[tuple[str, object], tuple[str, object]]
        ] = set()
        self._cycles: list[tuple[tuple[str, object], ...]] = []
        self._cycle_keys: set[frozenset] = set()
        self._violations: list[ProtocolViolation] = []
        self._warnings: list[ProtocolViolation] = []
        self._seen_rules: set[tuple] = set()
        self._acquisitions = 0
        self._io_events = 0
        self._drained = 0
        with _registry_mutex:
            _registry.add(self)

    # ------------------------------------------------------------------
    # acquisition graph

    def note_acquired(self, kind: str, name: object) -> None:
        """A latch/shard mutex was granted to the calling thread."""
        tid = threading.get_ident()
        key = (kind, name)
        with self._mutex:
            self._acquisitions += 1
            stack = self._held.setdefault(tid, [])
            if stack:
                self._add_edge(stack[-1], key)
            stack.append(key)

    def note_released(self, kind: str, name: object) -> None:
        """The calling thread released a latch/shard mutex."""
        tid = threading.get_ident()
        key = (kind, name)
        with self._mutex:
            stack = self._held.get(tid)
            if stack and key in stack:
                # out-of-order release is legal (hand-over-hand
                # coupling releases the parent first)
                stack.remove(key)
                if not stack:
                    del self._held[tid]

    def _add_edge(
        self, src: tuple[str, object], dst: tuple[str, object]
    ) -> None:
        """Record ``src -> dst``; run cycle search on new edges only."""
        if src == dst or (src, dst) in self._edge_cache:
            return
        self._edge_cache.add((src, dst))
        self._edges.setdefault(src, set()).add(dst)
        cycle = self._find_cycle(dst, src)
        if cycle is not None:
            key = frozenset(cycle)
            if key not in self._cycle_keys:
                self._cycle_keys.add(key)
                self._cycles.append(tuple(cycle))
                self._warn(
                    "lock-order-cycle",
                    "potential deadlock: acquisition order cycle "
                    + " -> ".join(f"{k}:{n}" for k, n in cycle),
                )

    def _find_cycle(
        self, start: tuple[str, object], goal: tuple[str, object]
    ) -> list[tuple[str, object]] | None:
        """DFS for a path ``start -> goal`` (closing the new edge)."""
        path: list[tuple[str, object]] = [start]
        seen = {start}
        stack = [iter(self._edges.get(start, ()))]
        while stack:
            try:
                node = next(stack[-1])
            except StopIteration:
                stack.pop()
                path.pop()
                continue
            if node == goal:
                return [goal, *path]
            if node in seen:
                continue
            seen.add(node)
            path.append(node)
            stack.append(iter(self._edges.get(node, ())))
        return None

    # ------------------------------------------------------------------
    # rule checks

    def note_io(
        self, op: str, pid: object, page_lsn: int | None = None
    ) -> None:
        """A ``PageStore`` read/write (or injected stall) is starting.

        Checks two rules: *latch-io* (warning — no latch should be
        held across an I/O) and, for writes, the *WAL rule* (hard —
        the log must be flushed through ``page_lsn`` before the page
        image reaches disk).
        """
        flushed = None
        if op == "write" and page_lsn and self.flushed_lsn is not None:
            # query the log outside the witness mutex: the provider may
            # take the log's own mutex and must stay deadlock-free
            flushed = self.flushed_lsn()
        tid = threading.get_ident()
        with self._mutex:
            self._io_events += 1
            held = tuple(self._held.get(tid, ()))
            if held:
                self._warn(
                    "latch-io",
                    f"{op}({pid}) issued while holding a latch",
                    held=held,
                )
            if flushed is not None and page_lsn > flushed:
                self._violate(
                    "wal-rule",
                    f"write({pid}) persists page_lsn={page_lsn} but the "
                    f"log is only flushed through {flushed}",
                )

    def note_lock_wait(self, name: object) -> None:
        """The calling thread is about to block on a transactional lock."""
        tid = threading.get_ident()
        with self._mutex:
            held = tuple(self._held.get(tid, ()))
            if held:
                self._violate(
                    "latch-lock-wait",
                    f"blocking lock wait on {name!r} while holding a "
                    "latch (paper §3 fn. 8: latches must never be held "
                    "across a lock wait)",
                    held=held,
                )
                self._add_edge(held[-1], (KIND_LOCK, name))

    # ------------------------------------------------------------------
    # pin ledger (leak reporting only — imbalance is not a violation
    # until the thread exits the operation still holding pins)

    def note_pinned(self, pid: object) -> None:
        tid = threading.get_ident()
        with self._mutex:
            self._pins.setdefault(tid, []).append(pid)

    def note_unpinned(self, pid: object) -> None:
        tid = threading.get_ident()
        with self._mutex:
            pins = self._pins.get(tid)
            if pins and pid in pins:
                pins.remove(pid)
                if not pins:
                    del self._pins[tid]

    # ------------------------------------------------------------------
    # reporting

    def _violate(self, rule: str, detail: str, held=()) -> None:
        dedup = (rule, detail)
        if dedup in self._seen_rules:
            return
        self._seen_rules.add(dedup)
        self._violations.append(
            ProtocolViolation(rule, detail, threading.get_ident(), held)
        )
        if self.flightrec is not None:
            self.flightrec.record(
                "lockdep.violation", rule=rule, detail=detail
            )

    def _warn(self, rule: str, detail: str, held=()) -> None:
        dedup = (rule, detail)
        if dedup in self._seen_rules:
            return
        self._seen_rules.add(dedup)
        self._warnings.append(
            ProtocolViolation(rule, detail, threading.get_ident(), held)
        )

    @property
    def violations(self) -> list[ProtocolViolation]:
        with self._mutex:
            return list(self._violations)

    @property
    def warnings(self) -> list[ProtocolViolation]:
        with self._mutex:
            return list(self._warnings)

    @property
    def cycles(self) -> list[tuple[tuple[str, object], ...]]:
        with self._mutex:
            return list(self._cycles)

    def leaks(self) -> ProtocolReport:
        """Report of currently-held latches/pins (for quiesced points)."""
        return self.report()

    def report(self) -> ProtocolReport:
        with self._mutex:
            return ProtocolReport(
                violations=list(self._violations),
                warnings=list(self._warnings),
                cycles=list(self._cycles),
                edges=len(self._edge_cache),
                acquisitions=self._acquisitions,
                io_events=self._io_events,
                leaked_latches={
                    tid: list(stack)
                    for tid, stack in self._held.items()
                    if stack
                },
                leaked_pins={
                    tid: list(pins)
                    for tid, pins in self._pins.items()
                    if pins
                },
            )

    def drain_new(self) -> list[ProtocolViolation]:
        """Hard violations recorded since the last drain (test gating)."""
        with self._mutex:
            fresh = self._violations[self._drained :]
            self._drained = len(self._violations)
            return list(fresh)


def all_witnesses() -> list[LockdepWitness]:
    """Every live witness (weakly registered at construction)."""
    with _registry_mutex:
        return list(_registry)


def drain_new_violations() -> list[ProtocolViolation]:
    """Drain fresh hard violations across all live witnesses.

    Used by the test-suite conftest when ``REPRO_PROTOCOL_CHECKS`` is
    set: any hard violation recorded during a test fails that test.
    """
    fresh: list[ProtocolViolation] = []
    for witness in all_witnesses():
        fresh.extend(witness.drain_new())
    return fresh
