"""Interprocedural latch/pin type-state over the call graph.

PR 5's linter proved release-on-all-paths *lexically* — an acquisition
had to sit inside a ``try/finally`` or ``with`` to be believed.  Every
place the protocol hands a latched frame across a call boundary
(crabbing in ``gist/tree.py``, the coupling baseline, redescend
helpers) needed a suppression.  This pass replaces that with an
abstract interpreter per function plus composable summaries:

* Each acquisition site creates a *resource id* (rid).  A state maps
  variables to rids and rids to a mask over ``HELD | RELEASED | NONE``
  (``NONE`` = the optional-acquire case, e.g. a helper that returns a
  latched frame or ``None``).
* Aliasing (``best = frame``, ``current = nxt``) is tracked with a
  per-state union-find; ``is`` / ``is not`` guards refine it — a
  ``current is not best`` branch where both names map to the same
  non-phi rid is *infeasible*, which is exactly what makes the chain
  hand-over-hand loops verify.
* Joins create memoized *phi* rids keyed by the frozenset of base
  members they may denote, so loop fixpoints converge.
* Function summaries record per-parameter effects (``borrow`` /
  ``consume`` / ``mixed``) and whether the return value carries a held
  resource (``no`` / ``yes`` / ``optional``, with tuple positions) —
  ``transfers-ownership-to-caller`` in the issue's vocabulary.
  Summaries are computed bottom-up over Tarjan SCCs; recursive cliques
  (``_search_coupled``) iterate to a fixpoint from neutral summaries.

Checked exits are normal returns, fall-through, and *top-level*
``raise`` statements.  Implicit exception propagation is deliberately
out of scope — that path is owned at runtime by ``_fault_cleanup``
sweeps and the lockdep leak ledger (see DESIGN.md §15).

Findings reuse the PR 5 rule ids (``latch-release``, ``pin-balance``)
so suppression markers and the fixture battery stay stable; a site is
only flagged when it is *both* lexically unprotected *and* not proven
balanced here, so the pass strictly retires suppressions, never adds
obligations to code the old linter accepted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.common import (
    Finding,
    SuppressionIndex,
    build_parent_map,
    call_attr,
    enclosing_function_lines,
    is_false_const,
    is_latch_acquire,
    is_pin,
    keyword_arg,
    receiver_text,
    structurally_protected,
)

HELD = 1
RELEASED = 2
NONE = 4

MAX_LOOP_ITERS = 8
MAX_SCC_ITERS = 4

#: intrinsic call attrs the engine models directly (never via summary)
_INTRINSIC_ATTRS = {
    "fix",
    "unfix",
    "pin",
    "unpin",
    "acquire",
    "release",
    "release_thread_fixes",
    "fixed",
}


@dataclass
class Resource:
    rid: int
    kind: str  # "frame" | "latch" | "pin"
    line: int
    label: str
    argtext: str = ""
    protected: bool = False
    is_param: bool = False


@dataclass
class Summary:
    """Composable per-function effect summary."""

    qname: str
    #: param name -> "borrow" | "consume" | "mixed"
    param_effects: dict[str, str] = field(default_factory=dict)
    returns_held: str = "no"  # "no" | "yes" | "optional"
    #: held positions when every held return is a tuple literal
    return_positions: tuple[int, ...] | None = None
    returns_kind: str = "frame"
    #: acquisition sites in this function (for bench/reporting)
    acquisition_sites: int = 0

    def key(self) -> tuple:
        return (
            tuple(sorted(self.param_effects.items())),
            self.returns_held,
            self.return_positions,
        )


class _State:
    """Abstract state: env (var -> rid), union-find, rid -> mask."""

    __slots__ = ("env", "parent", "mask")

    def __init__(self) -> None:
        self.env: dict[str, int] = {}
        self.parent: dict[int, int] = {}
        self.mask: dict[int, int] = {}

    def copy(self) -> "_State":
        st = _State()
        st.env = dict(self.env)
        st.parent = dict(self.parent)
        st.mask = dict(self.mask)
        return st

    def find(self, rid: int) -> int:
        root = rid
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(rid, rid) != rid:
            self.parent[rid], rid = root, self.parent[rid]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self.parent[ra] = rb
        ma = self.mask.pop(ra, 0)
        self.mask[rb] = self.mask.get(rb, 0) | ma
        return rb

    def get_mask(self, rid: int) -> int:
        return self.mask.get(self.find(rid), 0)

    def set_mask(self, rid: int, mask: int) -> None:
        self.mask[self.find(rid)] = mask


class _Loop:
    __slots__ = ("breaks", "continues")

    def __init__(self) -> None:
        self.breaks: list[_State] = []
        self.continues: list[_State] = []


@dataclass
class _Exit:
    """Snapshot of obligations at one function exit."""

    kind: str  # "return" | "raise" | "fall"
    line: int
    #: (member frozenset, mask, returned?) per live rid root
    entries: list[tuple[frozenset, int, bool]]
    #: shape of the returned value, for summary computation
    returned_held: bool = False
    returned_positions: tuple[int, ...] | None = None
    returned_is_tuple: bool = False
    returns_none: bool = False


class _FunctionAnalysis:
    """One abstract interpretation of a single function body."""

    def __init__(
        self,
        engine: "TypeStateEngine",
        fn: FunctionInfo,
        parents: dict[ast.AST, ast.AST],
        supp: SuppressionIndex,
    ) -> None:
        self.engine = engine
        self.fn = fn
        self.ast_parents = parents
        self.supp = supp
        self.resources: dict[int, Resource] = {}
        self.members: dict[int, frozenset] = {}
        self.escaped: set[int] = set()
        self.released: set[int] = set()
        #: rids discharged by a thread-wide sweep (release_thread_fixes)
        self.swept: set[int] = set()
        self.exits: list[_Exit] = []
        self.param_rids: dict[str, int] = {}
        self.phi_memo: dict[frozenset, int] = {}
        self.site_rids: dict[tuple[int, int], int] = {}
        self.acquisitions = 0
        self._next = 0
        qname = fn.qname
        self.callsites = engine.callsites.get(qname, {})
        self.in_handler = 0
        self.finally_stack: list[tuple[str, list | None]] = []
        self.loops: list[_Loop] = []

    # -- rid bookkeeping ------------------------------------------------
    def _new_rid(self) -> int:
        self._next += 1
        return self._next

    def new_resource(
        self,
        kind: str,
        node: ast.AST,
        label: str,
        argtext: str = "",
        is_param: bool = False,
    ) -> int:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if not is_param and key in self.site_rids:
            rid = self.site_rids[key]
        else:
            rid = self._new_rid()
            if not is_param:
                self.site_rids[key] = rid
            self.resources[rid] = Resource(
                rid=rid,
                kind=kind,
                line=getattr(node, "lineno", 0),
                label=label,
                argtext=argtext,
                protected=not is_param
                and structurally_protected(node, self.ast_parents),
                is_param=is_param,
            )
            self.members[rid] = frozenset({rid})
        return rid

    def phi(self, a: int, b: int, st: _State) -> int:
        mem = self.members[a] | self.members[b]
        rid = self.phi_memo.get(mem)
        if rid is None:
            rid = self._new_rid()
            self.phi_memo[mem] = rid
            self.members[rid] = mem
        return rid

    def mark_escaped(self, rid: int, st: _State) -> None:
        self.escaped.update(self.members.get(st.find(rid), {rid}))

    def mark_released(self, rid: int, st: _State) -> None:
        self.released.update(self.members.get(st.find(rid), {rid}))
        st.set_mask(rid, RELEASED)

    def escape_env_name(self, name: str, st: _State) -> None:
        rid = st.env.get(name)
        if rid is not None:
            self.mark_escaped(rid, st)
        prefix = name + "."
        for key, rid in st.env.items():
            if key.startswith(prefix):
                self.mark_escaped(rid, st)

    # -- state join -----------------------------------------------------
    def canon(self, st: _State) -> tuple:
        env = tuple(
            sorted(
                (
                    var,
                    tuple(
                        sorted(
                            self.members.get(
                                st.find(rid), frozenset({rid})
                            )
                        )
                    ),
                )
                for var, rid in st.env.items()
            )
        )
        masks = tuple(
            sorted(
                (
                    tuple(
                        sorted(
                            self.members.get(root, frozenset({root}))
                        )
                    ),
                    st.mask[root],
                )
                for root in {st.find(r) for r in st.mask}
            )
        )
        return (env, masks)

    def join(self, a: _State | None, b: _State | None) -> _State | None:
        if a is None:
            return b
        if b is None:
            return a
        out = _State()
        # masks first, keyed by member-set so union-finds don't leak
        masks: dict[frozenset, int] = {}
        for st in (a, b):
            roots = {st.find(r) for r in st.mask}
            for root in roots:
                mem = self.members.get(root, frozenset({root}))
                masks[mem] = masks.get(mem, 0) | st.mask[root]
        rep: dict[frozenset, int] = {}

        def rid_for(mem: frozenset) -> int:
            if mem in rep:
                return rep[mem]
            if len(mem) == 1:
                rid = next(iter(mem))
            else:
                rid = self.phi_memo.get(mem)
                if rid is None:
                    rid = self._new_rid()
                    self.phi_memo[mem] = rid
                    self.members[rid] = mem
            rep[mem] = rid
            return rid

        for mem, mask in masks.items():
            out.mask[rid_for(mem)] = mask
        for var in set(a.env) | set(b.env):
            ra = a.env.get(var)
            rb = b.env.get(var)
            if ra is not None and rb is not None:
                ma = self.members.get(a.find(ra), frozenset({ra}))
                mb = self.members.get(b.find(rb), frozenset({rb}))
                mem = ma | mb
                rid = rid_for(mem)
                if mem not in masks:
                    mask = 0
                    for st, m in ((a, ma), (b, mb)):
                        for root in {st.find(r) for r in st.mask}:
                            if self.members.get(
                                root, frozenset({root})
                            ) & m:
                                mask |= st.mask[root]
                    out.mask[rid] = mask
                out.env[var] = rid
            else:
                st = a if ra is not None else b
                rid = ra if ra is not None else rb
                root = st.find(rid)
                mem = self.members.get(root, frozenset({rid}))
                out.env[var] = rid_for(mem)
        return out

    def join_all(self, *states) -> _State | None:
        out = None
        for st in states:
            out = self.join(out, st)
        return out

    # -- finally / exits ------------------------------------------------
    def _run_finallys(self, st: _State, until_loop: bool) -> _State:
        for marker, body in reversed(self.finally_stack):
            if marker == "loop":
                if until_loop:
                    break
                continue
            saved = self.finally_stack
            self.finally_stack = []
            nxt = self.exec_block(body, st)
            self.finally_stack = saved
            if nxt is None:
                break
            st = nxt
        return st

    def record_exit(
        self,
        kind: str,
        node: ast.AST,
        st: _State,
        returned_roots: set[int] | None = None,
        returned_held: bool = False,
        returned_positions: tuple[int, ...] | None = None,
        returned_is_tuple: bool = False,
        returns_none: bool = False,
    ) -> None:
        returned_roots = returned_roots or set()
        returned_members: set[int] = set()
        for rid in returned_roots:
            returned_members |= self.members.get(
                st.find(rid), frozenset({rid})
            )
        entries = []
        for root in {st.find(r) for r in list(st.mask)}:
            mem = self.members.get(root, frozenset({root}))
            entries.append(
                (mem, st.mask[root], bool(mem & returned_members))
            )
        self.exits.append(
            _Exit(
                kind=kind,
                line=getattr(node, "lineno", self.fn.lineno),
                entries=entries,
                returned_held=returned_held,
                returned_positions=returned_positions,
                returned_is_tuple=returned_is_tuple,
                returns_none=returns_none,
            )
        )

    # -- expression evaluation ------------------------------------------
    def eval_expr(self, expr, st: _State) -> int | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Await):
            return self.eval_expr(expr.value, st)
        if isinstance(expr, ast.Name):
            return st.env.get(expr.id)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, st)
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                self.eval_expr(elt, st)
            return None
        if isinstance(expr, ast.BoolOp):
            for v in expr.values:
                self.eval_expr(v, st)
            return None
        if isinstance(expr, (ast.BinOp, ast.Compare)):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self.eval_call(node, st)
            return None
        if isinstance(expr, ast.IfExp):
            self.eval_expr(expr.test, st)
            a = self.eval_expr(expr.body, st)
            b = self.eval_expr(expr.orelse, st)
            if a is not None:
                self.mark_escaped(a, st)
            if b is not None:
                self.mark_escaped(b, st)
            return None
        # other expression shapes: evaluate nested calls for effects
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self.eval_call(node, st)
        return None

    def _arg_rid(self, arg, st: _State) -> int | None:
        if isinstance(arg, ast.Name):
            return st.env.get(arg.id)
        return None

    def _release_by_argtext(self, text: str, st: _State) -> bool:
        for rid, res in list(self.resources.items()):
            if res.argtext and res.argtext == text:
                mask = st.get_mask(rid)
                if mask & HELD:
                    self.mark_released(rid, st)
                    return True
        return False

    def eval_call(self, call: ast.Call, st: _State) -> int | None:
        attr = call_attr(call)
        # evaluate nested calls inside arguments first
        arg_rids: list[int | None] = []
        for arg in call.args:
            if isinstance(arg, ast.Call):
                self.eval_call(arg, st)
            arg_rids.append(self._arg_rid(arg, st))
        kw_rids: dict[str, int | None] = {}
        for kw in call.keywords:
            if isinstance(kw.value, ast.Call):
                self.eval_call(kw.value, st)
            if kw.arg:
                kw_rids[kw.arg] = self._arg_rid(kw.value, st)

        # ---- intrinsics ----
        if attr == "fix":
            nowait = keyword_arg(call, "nowait")
            if nowait is not None and not is_false_const(nowait):
                return None
            self.acquisitions += 1
            return self._acquire(call, "frame", st)
        if attr == "pin" and is_pin(call):
            self.acquisitions += 1
            text = ""
            if call.args:
                try:
                    text = ast.unparse(call.args[0])
                except Exception:
                    text = ""
            return self._acquire(call, "pin", st, argtext=text)
        if is_latch_acquire(call):
            nowait = keyword_arg(call, "nowait")
            if nowait is not None and not is_false_const(nowait):
                return None
            self.acquisitions += 1
            recv = receiver_text(call)
            rid = self._acquire(call, "latch", st, argtext=recv)
            st.env[recv] = rid
            return None  # latch acquire returns bool, not a handle
        if attr == "unfix":
            if call.args:
                rid = self._arg_rid(call.args[0], st)
                if rid is not None:
                    self.mark_released(rid, st)
                else:
                    try:
                        text = ast.unparse(call.args[0])
                    except Exception:
                        text = ""
                    self._release_by_argtext(text, st)
            return None
        if attr == "release":
            recv = receiver_text(call)
            rid = st.env.get(recv)
            if rid is not None:
                self.mark_released(rid, st)
            else:
                self._release_by_argtext(recv, st)
            return None
        if attr == "unpin":
            if call.args:
                try:
                    text = ast.unparse(call.args[0])
                except Exception:
                    text = ""
                if not self._release_by_argtext(text, st):
                    rid = self._arg_rid(call.args[0], st)
                    if rid is not None:
                        self.mark_released(rid, st)
            return None
        if attr == "release_thread_fixes":
            for rid in list(self.resources):
                if st.get_mask(rid) & HELD:
                    self.mark_released(rid, st)
                self.swept.update(
                    self.members.get(st.find(rid), {rid})
                )
            return None

        # ---- summaries ----
        key = (call.lineno, call.col_offset)
        callee = self.callsites.get(key)
        if callee is not None and attr not in _INTRINSIC_ATTRS:
            return self._apply_summary(call, callee, arg_rids, kw_rids, st)

        # unresolved (or intrinsic-named but unmodelled): any resource
        # passed as an argument escapes — the callee may own it now
        for rid in arg_rids + list(kw_rids.values()):
            if rid is not None:
                self.mark_escaped(rid, st)
        return None

    def _acquire(
        self, call: ast.Call, kind: str, st: _State, argtext: str = ""
    ) -> int:
        rid = self.new_resource(
            kind,
            call,
            label=f"{kind} acquired",
            argtext=argtext,
        )
        root = st.find(rid)
        prev = st.mask.get(root, 0)
        if prev & HELD and prev == HELD:
            # loop-carried re-acquisition: only a leak if nothing else
            # still names the previous instance
            mem = self.members.get(root, frozenset({rid}))
            aliased = any(
                self.members.get(st.find(r), frozenset({r})) & mem
                for r in st.env.values()
            )
            if not aliased and not (mem & self.escaped):
                self.exits.append(
                    _Exit(
                        kind="reacquire",
                        line=call.lineno,
                        entries=[(mem, HELD, False)],
                    )
                )
        st.set_mask(rid, HELD)
        return rid

    def _apply_summary(
        self,
        call: ast.Call,
        callee: str,
        arg_rids: list[int | None],
        kw_rids: dict[str, int | None],
        st: _State,
    ) -> int | None:
        summ = self.engine.summaries.get(callee)
        info = self.engine.graph.functions.get(callee)
        if summ is None or info is None:
            for rid in arg_rids + list(kw_rids.values()):
                if rid is not None:
                    self.mark_escaped(rid, st)
            return None
        params = [a.arg for a in info.node.args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        for idx, rid in enumerate(arg_rids):
            if rid is None or idx >= len(params):
                continue
            effect = summ.param_effects.get(params[idx], "borrow")
            if effect in ("consume", "mixed"):
                self.mark_released(rid, st)
        for name, rid in kw_rids.items():
            if rid is None:
                continue
            effect = summ.param_effects.get(name, "borrow")
            if effect in ("consume", "mixed"):
                self.mark_released(rid, st)
        if summ.returns_held == "no":
            return None
        rid = self.new_resource(
            summ.returns_kind,
            call,
            label=f"held result of {callee.rsplit('.', 1)[-1]}()",
        )
        mask = HELD if summ.returns_held == "yes" else HELD | NONE
        st.set_mask(rid, mask)
        return rid

    # -- refinement -----------------------------------------------------
    def refine(self, test, st: _State, branch: bool) -> _State | None:
        """Refine ``st`` along the ``branch`` arm of ``test``.

        Returns None when the branch is statically infeasible.
        """
        if test is None:
            return st
        if isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ):
            return self.refine(test.operand, st, not branch)
        if isinstance(test, ast.Name):
            rid = st.env.get(test.id)
            if rid is not None:
                return self._refine_noneness(rid, st, is_none=not branch)
            return st
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        ):
            left, right = test.left, test.comparators[0]
            is_op = isinstance(test.ops[0], ast.Is)
            same = is_op == branch  # truth of "left is right"
            l_rid = self._arg_rid(left, st)
            r_rid = self._arg_rid(right, st)
            l_none = isinstance(left, ast.Constant) and left.value is None
            r_none = (
                isinstance(right, ast.Constant) and right.value is None
            )
            if r_none and l_rid is not None:
                return self._refine_noneness(l_rid, st, is_none=same)
            if l_none and r_rid is not None:
                return self._refine_noneness(r_rid, st, is_none=same)
            if l_rid is not None and r_rid is not None:
                ra, rb = st.find(l_rid), st.find(r_rid)
                base = (
                    len(self.members.get(ra, frozenset({ra}))) == 1
                    and len(self.members.get(rb, frozenset({rb}))) == 1
                )
                if same:
                    if ra != rb:
                        st.union(l_rid, r_rid)
                    return st
                if ra == rb and base:
                    return None  # "x is not x" branch: infeasible
                return st
        held_probe = self._held_by_me_rid(test, st)
        if held_probe is not None:
            rid, truth_means_held = held_probe
            held_branch = truth_means_held == branch
            if not held_branch:
                # latch not held by this thread: the release obligation
                # is discharged on this arm (this is the guarded-release
                # idiom — `if f.latch.held_by_me(): pool.unfix(f)`)
                mask = st.get_mask(rid) & ~HELD
                st.set_mask(rid, mask or RELEASED)
            return st
        # opaque test: evaluate for call effects, no refinement
        self.eval_expr(test, st)
        return st

    def _held_by_me_rid(
        self, test, st: _State
    ) -> tuple[int, bool] | None:
        """Match ``x.latch.held_by_me()`` probes (bare or compared with
        ``None``); returns (rid of x, truthiness-means-held)."""
        call = None
        truth_means_held = True
        if isinstance(test, ast.Call):
            call = test
        elif (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.left, ast.Call)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            call = test.left
            truth_means_held = isinstance(test.ops[0], ast.IsNot)
        if call is None or call_attr(call) != "held_by_me":
            return None
        recv = receiver_text(call)
        base = recv.split(".", 1)[0]
        rid = st.env.get(base)
        if rid is None:
            rid = st.env.get(recv)
        if rid is None:
            return None
        return rid, truth_means_held

    def _refine_noneness(
        self, rid: int, st: _State, is_none: bool
    ) -> _State | None:
        mask = st.get_mask(rid)
        if mask == 0:
            return st
        if is_none:
            if not mask & NONE:
                return st  # not an optional resource; don't refine away
            st.set_mask(rid, NONE)
            return st
        new = mask & ~NONE
        if new == 0:
            return None
        st.set_mask(rid, new)
        return st

    # -- statements -----------------------------------------------------
    def exec_block(self, stmts, st: _State | None) -> _State | None:
        for stmt in stmts:
            if st is None:
                return None
            st = self.exec_stmt(stmt, st)
        return st

    def exec_stmt(self, stmt, st: _State) -> _State | None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return st  # nested defs: not interpreted
        if isinstance(stmt, ast.Return):
            return self._exec_return(stmt, st)
        if isinstance(stmt, ast.Raise):
            st = self._run_finallys(st.copy(), until_loop=False)
            if not self.in_handler:
                self.record_exit("raise", stmt, st)
            return None
        if isinstance(stmt, ast.Break):
            st = self._run_finallys(st.copy(), until_loop=True)
            if self.loops:
                self.loops[-1].breaks.append(st)
            return None
        if isinstance(stmt, ast.Continue):
            st = self._run_finallys(st.copy(), until_loop=True)
            if self.loops:
                self.loops[-1].continues.append(st)
            return None
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, st)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                fake = ast.Assign(targets=[stmt.target], value=stmt.value)
                ast.copy_location(fake, stmt)
                return self._exec_assign(fake, st)
            return st
        if isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value, st)
            if isinstance(stmt.target, ast.Name):
                st.env.pop(stmt.target.id, None)
            return st
        if isinstance(stmt, ast.Expr):
            rid = self.eval_expr(stmt.value, st)
            # a held result discarded on the floor stays an obligation:
            # the rid remains unbound and will be flagged at exits
            _ = rid
            return st
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, st)
        if isinstance(stmt, (ast.While,)):
            return self._exec_while(stmt, st)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._exec_for(stmt, st)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, st)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, st)
        if isinstance(stmt, (ast.Assert, ast.Delete)):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self.eval_call(node, st)
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        st.env.pop(target.id, None)
            return st
        if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom)):
            return st
        if isinstance(stmt, ast.Global) or isinstance(
            stmt, ast.Nonlocal
        ):
            return st
        # anything else: evaluate calls for effects
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self.eval_call(node, st)
        return st

    def _held_nonparam(self, rid: int, st: _State) -> bool:
        """Held, and ownership originates in this function (not a
        parameter passed straight back — pass-throughs do not create a
        new caller obligation)."""
        if not st.get_mask(rid) & HELD:
            return False
        mem = self.members.get(st.find(rid), frozenset({rid}))
        return any(
            b in self.resources and not self.resources[b].is_param
            for b in mem
        )

    def _exec_return(self, stmt: ast.Return, st: _State) -> None:
        value = stmt.value
        st = st.copy()
        returned_roots: set[int] = set()
        returned_held = False
        returned_positions: list[int] = []
        returned_is_tuple = isinstance(value, ast.Tuple)
        returns_none = value is None or (
            isinstance(value, ast.Constant) and value.value is None
        )
        if value is not None:
            rid = self.eval_expr(value, st)
            if rid is not None and self._held_nonparam(rid, st):
                returned_held = True
            if returned_is_tuple:
                for idx, elt in enumerate(value.elts):
                    erid = self._arg_rid(elt, st)
                    if erid is not None and self._held_nonparam(
                        erid, st
                    ):
                        returned_positions.append(idx)
                        returned_held = True
            # escape every name reachable from the returned expression
            for node in ast.walk(value):
                if isinstance(node, ast.Name):
                    self.escape_env_name(node.id, st)
                    r = st.env.get(node.id)
                    if r is not None:
                        returned_roots.add(r)
            if rid is not None:
                self.mark_escaped(rid, st)
                returned_roots.add(rid)
        st = self._run_finallys(st, until_loop=False)
        self.record_exit(
            "return",
            stmt,
            st,
            returned_roots=returned_roots,
            returned_held=returned_held,
            returned_positions=tuple(returned_positions) or None,
            returned_is_tuple=returned_is_tuple,
            returns_none=returns_none,
        )
        return None

    def _note_lost(
        self, name: str, stmt: ast.AST, st: _State, new_rid: int | None
    ) -> None:
        """Rebinding ``name`` drops the last reference to a held frame:
        nothing can release it any more (short of a thread-wide sweep),
        so record the loss as a pending obligation."""
        old = st.env.get(name)
        if old is None or old == new_rid:
            return
        root = st.find(old)
        if st.mask.get(root, 0) != HELD:
            return
        mem = self.members.get(root, frozenset({old}))
        bases = [b for b in mem if b in self.resources]
        if not bases or any(
            self.resources[b].is_param
            or self.resources[b].kind != "frame"
            or self.resources[b].protected
            for b in bases
        ):
            return
        for var, rid in st.env.items():
            if var == name:
                continue
            if (
                self.members.get(st.find(rid), frozenset({rid})) & mem
            ):
                return
        self.exits.append(
            _Exit(
                kind="lost",
                line=getattr(stmt, "lineno", 0),
                entries=[(mem, HELD, False)],
            )
        )

    def _exec_assign(self, stmt: ast.Assign, st: _State) -> _State:
        value = stmt.value
        rid = self.eval_expr(value, st)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                name = target.id
                self._note_lost(name, stmt, st, rid)
                # rebinding invalidates derived pseudo-keys (frame.latch)
                for key in [
                    k for k in st.env if k.startswith(name + ".")
                ]:
                    del st.env[key]
                if rid is not None:
                    st.env[name] = rid
                elif isinstance(value, ast.Name):
                    src = st.env.get(value.id)
                    if src is not None:
                        st.env[name] = src
                    else:
                        st.env.pop(name, None)
                else:
                    st.env.pop(name, None)
            elif isinstance(target, ast.Tuple) and isinstance(
                value, ast.Call
            ):
                self._bind_tuple_call(target, value, st)
            elif isinstance(target, ast.Tuple) and isinstance(
                value, ast.Tuple
            ):
                for t, v in zip(target.elts, value.elts):
                    if isinstance(t, ast.Name):
                        vr = self._arg_rid(v, st)
                        if vr is not None:
                            st.env[t.id] = vr
                        else:
                            st.env.pop(t.id, None)
            else:
                # attribute/subscript target: the value escapes
                if rid is not None:
                    self.mark_escaped(rid, st)
                elif isinstance(value, ast.Name):
                    self.escape_env_name(value.id, st)
        return st

    def _bind_tuple_call(
        self, target: ast.Tuple, call: ast.Call, st: _State
    ) -> None:
        key = (call.lineno, call.col_offset)
        callee = self.callsites.get(key)
        summ = self.engine.summaries.get(callee) if callee else None
        for t in target.elts:
            if isinstance(t, ast.Name):
                self._note_lost(t.id, call, st, None)
                st.env.pop(t.id, None)
        if (
            summ is None
            or summ.returns_held == "no"
            or summ.return_positions is None
        ):
            return
        for pos in summ.return_positions:
            if pos < len(target.elts) and isinstance(
                target.elts[pos], ast.Name
            ):
                rid = self.new_resource(
                    summ.returns_kind,
                    call,
                    label=(
                        "held result of "
                        f"{callee.rsplit('.', 1)[-1]}() [pos {pos}]"
                    ),
                )
                mask = (
                    HELD if summ.returns_held == "yes" else HELD | NONE
                )
                st.set_mask(rid, mask)
                st.env[target.elts[pos].id] = rid

    def _exec_if(self, stmt: ast.If, st: _State) -> _State | None:
        t_st = self.refine(stmt.test, st.copy(), branch=True)
        f_st = self.refine(stmt.test, st.copy(), branch=False)
        t_out = (
            self.exec_block(stmt.body, t_st) if t_st is not None else None
        )
        f_out = (
            self.exec_block(stmt.orelse, f_st)
            if f_st is not None
            else None
        )
        return self.join(t_out, f_out)

    def _exec_while(self, stmt: ast.While, st: _State) -> _State | None:
        loop = _Loop()
        self.loops.append(loop)
        self.finally_stack.append(("loop", None))
        st0 = st.copy()
        in_st = st.copy()
        always_true = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        prev_canon = None
        for _ in range(MAX_LOOP_ITERS):
            loop.continues = []
            body_in = self.refine(stmt.test, in_st.copy(), branch=True)
            out = (
                self.exec_block(stmt.body, body_in)
                if body_in is not None
                else None
            )
            tail = self.join_all(out, *loop.continues)
            if tail is None:
                break
            new_in = self.join(st0.copy(), tail)
            canon = self.canon(new_in)
            if canon == prev_canon:
                in_st = new_in
                break
            prev_canon = canon
            in_st = new_in
        self.finally_stack.pop()
        self.loops.pop()
        exits: list[_State] = []
        if not always_true:
            f_st = self.refine(stmt.test, in_st.copy(), branch=False)
            if f_st is not None:
                f_st = self.exec_block(stmt.orelse, f_st)
            if f_st is not None:
                exits.append(f_st)
        exits.extend(loop.breaks)
        return self.join_all(*exits) if exits else None

    def _exec_for(self, stmt, st: _State) -> _State | None:
        self.eval_expr(stmt.iter, st)
        loop = _Loop()
        self.loops.append(loop)
        self.finally_stack.append(("loop", None))
        st0 = st.copy()
        in_st = st.copy()
        prev_canon = None
        for _ in range(MAX_LOOP_ITERS):
            loop.continues = []
            body_in = in_st.copy()
            if isinstance(stmt.target, ast.Name):
                body_in.env.pop(stmt.target.id, None)
            out = self.exec_block(stmt.body, body_in)
            tail = self.join_all(out, *loop.continues)
            if tail is None:
                break
            new_in = self.join(st0.copy(), tail)
            canon = self.canon(new_in)
            if canon == prev_canon:
                in_st = new_in
                break
            prev_canon = canon
            in_st = new_in
        self.finally_stack.pop()
        self.loops.pop()
        exits: list[_State] = [in_st]
        exits.extend(loop.breaks)
        out = self.join_all(*exits)
        if out is not None:
            out = self.exec_block(stmt.orelse, out)
        return out

    def _exec_try(self, stmt: ast.Try, st: _State) -> _State | None:
        if stmt.finalbody:
            self.finally_stack.append(("finally", stmt.finalbody))
        entry = st.copy()
        body_out = self.exec_block(stmt.body, st)
        if body_out is not None:
            body_out = self.exec_block(stmt.orelse, body_out)
        handler_outs: list[_State | None] = []
        for handler in stmt.handlers:
            h_st = self.join(entry.copy(), body_out)
            if h_st is None:
                h_st = entry.copy()
            else:
                h_st = h_st.copy()
            self.in_handler += 1
            try:
                handler_outs.append(
                    self.exec_block(handler.body, h_st)
                )
            finally:
                self.in_handler -= 1
        merged = self.join_all(body_out, *handler_outs)
        if stmt.finalbody:
            self.finally_stack.pop()
            if merged is not None:
                merged = self.exec_block(stmt.finalbody, merged)
        return merged

    def _exec_with(self, stmt, st: _State) -> _State | None:
        scoped: list[int] = []
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                attr = call_attr(expr)
                if attr == "fixed":
                    rid = self.new_resource(
                        "frame", expr, label="frame via fixed()"
                    )
                    st.set_mask(rid, HELD)
                    scoped.append(rid)
                    if isinstance(item.optional_vars, ast.Name):
                        st.env[item.optional_vars.id] = rid
                    continue
                self.eval_call(expr, st)
            else:
                self.eval_expr(expr, st)
        out = self.exec_block(stmt.body, st)
        if out is not None:
            for rid in scoped:
                self.mark_released(rid, out)
        return out

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        st = _State()
        node = self.fn.node
        for arg in node.args.args + node.args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            rid = self.new_resource(
                "frame", arg, label=f"param {arg.arg}", is_param=True
            )
            self.param_rids[arg.arg] = rid
            st.env[arg.arg] = rid
            st.set_mask(rid, HELD | NONE)
        out = self.exec_block(node.body, st)
        if out is not None:
            self.record_exit("fall", node, out, returns_none=True)

    # -- summary + findings ---------------------------------------------
    def summary(self) -> Summary:
        summ = Summary(qname=self.fn.qname)
        summ.acquisition_sites = self.acquisitions
        normal = [e for e in self.exits if e.kind in ("return", "fall")]
        for name, rid in self.param_rids.items():
            touched = rid in self.released or rid in self.escaped
            held_somewhere = False
            for exit_ in normal:
                for mem, mask, _ in exit_.entries:
                    if rid in mem and mask & HELD:
                        held_somewhere = True
            if not touched:
                summ.param_effects[name] = "borrow"
            elif not held_somewhere:
                summ.param_effects[name] = "consume"
            else:
                summ.param_effects[name] = "mixed"
        returns = [e for e in self.exits if e.kind == "return"]
        held_returns = [e for e in returns if e.returned_held]
        if held_returns:
            non_held = [e for e in returns if not e.returned_held]
            if non_held or any(
                e.returns_none for e in returns
            ):
                summ.returns_held = "optional"
            else:
                summ.returns_held = "yes"
            if all(e.returned_is_tuple for e in held_returns):
                positions: set[int] = set()
                for e in held_returns:
                    positions.update(e.returned_positions or ())
                summ.return_positions = tuple(sorted(positions))
        return summ

    def findings(self) -> list[Finding]:
        out: list[Finding] = []
        flagged: set[int] = set()
        for exit_ in self.exits:
            for mem, mask, returned in exit_.entries:
                if not mask & HELD or returned:
                    continue
                if mem & self.escaped:
                    continue
                if exit_.kind in ("lost", "reacquire") and (
                    mem & self.swept
                ):
                    continue
                for base in mem:
                    res = self.resources.get(base)
                    if res is None or res.is_param or res.protected:
                        continue
                    if base in flagged:
                        continue
                    flagged.add(base)
                    rule = (
                        "pin-balance"
                        if res.kind == "pin"
                        else "latch-release"
                    )
                    if exit_.kind == "reacquire":
                        msg = (
                            f"{res.label} at line {res.line} may still "
                            "be held when the site re-acquires on the "
                            "next loop iteration"
                        )
                    elif exit_.kind == "lost":
                        msg = (
                            f"{res.label} at line {res.line} is still "
                            "held when its last reference is rebound "
                            f"at line {exit_.line}"
                        )
                    else:
                        what = (
                            "pin is not unpinned"
                            if res.kind == "pin"
                            else "latch/frame is not released"
                        )
                        msg = (
                            f"{res.label} at line {res.line}: {what} on "
                            f"the path reaching line {exit_.line} "
                            "(interprocedural)"
                        )
                    out.append(
                        Finding(
                            path=str(self.fn.path),
                            line=res.line,
                            rule=rule,
                            message=msg,
                        )
                    )
        return out


class TypeStateEngine:
    """Bottom-up summary computation + per-function verification."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, Summary] = {}
        #: caller qname -> {(lineno, col) -> callee qname}
        self.callsites: dict[str, dict[tuple[int, int], str]] = {}
        for qname, sites in graph.edges.items():
            table = self.callsites.setdefault(qname, {})
            for site in sites:
                table[(site.lineno, site.col)] = site.callee
        self._parents: dict[str, dict] = {}
        self._supp: dict[Path, SuppressionIndex] = {}
        self.functions_analyzed = 0
        self.summaries_computed = 0

    def _file_ctx(
        self, fn: FunctionInfo
    ) -> tuple[dict, SuppressionIndex]:
        # the parent map must index the same AST objects the callgraph
        # indexed, so it is built from fn.node itself (the structural
        # checks never need to walk above the enclosing def)
        if fn.qname not in self._parents:
            self._parents[fn.qname] = build_parent_map(fn.node)
        if fn.path not in self._supp:
            self._supp[fn.path] = SuppressionIndex(fn.path.read_text())
        return self._parents[fn.qname], self._supp[fn.path]

    def _analyze_fn(self, qname: str) -> _FunctionAnalysis | None:
        fn = self.graph.functions.get(qname)
        if fn is None:
            return None
        parents, supp = self._file_ctx(fn)
        analysis = _FunctionAnalysis(self, fn, parents, supp)
        analysis.run()
        self.functions_analyzed += 1
        return analysis

    def compute_summaries(self) -> None:
        for comp in self.graph.sccs():
            for qname in comp:
                self.summaries.setdefault(qname, Summary(qname=qname))
            for _ in range(MAX_SCC_ITERS):
                changed = False
                for qname in comp:
                    analysis = self._analyze_fn(qname)
                    if analysis is None:
                        continue
                    summ = analysis.summary()
                    self.summaries_computed += 1
                    if summ.key() != self.summaries[qname].key():
                        self.summaries[qname] = summ
                        changed = True
                    else:
                        self.summaries[qname] = summ
                if not changed:
                    break

    def verify(self) -> list[Finding]:
        """Final pass: re-interpret every function, collect findings."""
        findings: list[Finding] = []
        for qname, fn in self.graph.functions.items():
            analysis = self._analyze_fn(qname)
            if analysis is None:
                continue
            parents, supp = self._file_ctx(fn)
            for finding in analysis.findings():
                lines = enclosing_function_lines(fn.node, parents)
                res_lines = [finding.line] + lines
                if supp.allows(finding.rule, res_lines):
                    continue
                findings.append(finding)
        return findings


def check_paths(paths: list[Path], graph: CallGraph | None = None):
    """Build (or reuse) the call graph, run the engine, return
    ``(findings, engine)``."""
    from repro.analysis import callgraph as cg

    if graph is None:
        graph = cg.build(paths)
    engine = TypeStateEngine(graph)
    engine.compute_summaries()
    findings = engine.verify()
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, engine
