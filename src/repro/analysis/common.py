"""Shared plumbing for the static protocol passes.

:mod:`repro.analysis.lint` (lexical rules), :mod:`~repro.analysis.
typestate` (interprocedural latch/pin ownership) and
:mod:`~repro.analysis.lockorder` (static acquisition order) all need
the same four ingredients: the :class:`Finding` record, the call-shape
heuristics that decide what counts as a latch/pin/lock acquisition,
the ``# lint: allow(rule): reason`` suppression index, and the
structural release-on-all-paths criterion (``try/finally``, ``with``,
next-sibling-try) that discharges an acquisition without any dataflow.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)(:?)")
_ALLOW_FILE_RE = re.compile(r"#\s*lint:\s*allow-file\(([^)]*)\)(:?)")

#: method names whose presence in a finally/handler counts as cleanup
CLEANUP_ATTRS = frozenset(
    {"release", "unfix", "unpin", "release_thread_fixes", "close"}
)


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# call-shape heuristics
# ----------------------------------------------------------------------


def receiver_text(call: ast.Call) -> str:
    """Source text of the attribute receiver (``a.b`` for ``a.b.c()``)."""
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - defensive
            return ""
    return ""


def call_attr(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def keyword_arg(call: ast.Call, name: str):
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def is_false_const(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def is_latch_acquire(call: ast.Call) -> bool:
    """``x.acquire(...)`` where the receiver looks like a latch/mutex."""
    if call_attr(call) != "acquire":
        return False
    recv = receiver_text(call).lower()
    return any(
        token in recv for token in ("latch", "lock", "mutex", "cond")
    ) and "locks" not in recv


def is_lock_acquire(call: ast.Call) -> bool:
    """Transactional ``LockManager.acquire`` (deadlock-detected side)."""
    if call_attr(call) != "acquire":
        return False
    recv = receiver_text(call).lower()
    return "locks" in recv or recv.endswith("lock_manager")


def is_fix(call: ast.Call) -> bool:
    return call_attr(call) == "fix"


def is_pin(call: ast.Call) -> bool:
    return call_attr(call) == "pin"


def is_io_call(call: ast.Call) -> bool:
    attr = call_attr(call)
    recv = receiver_text(call).lower()
    if attr in {"read", "write"} and "store" in recv:
        return True
    if attr == "sleep":  # time.sleep / module-level sleep
        return True
    if attr == "_io_stall":
        return True
    return False


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------


def _comment_lines(source: str):
    """(lineno, text) for every *real* comment token — a docstring
    that merely mentions ``# lint: allow(...)`` is not a suppression."""
    import io
    import tokenize

    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # unparseable file: fall back to raw lines (the linter will
        # report a parse error separately; suppressions still apply)
        return list(enumerate(source.splitlines(), start=1))
    return [
        (tok.start[0], tok.string)
        for tok in tokens
        if tok.type == tokenize.COMMENT
    ]


class SuppressionIndex:
    """Per-file ``# lint: allow(...)`` table.

    ``allows(rule, lines)`` answers whether any of the given lines (a
    finding's own line, its end line, or the ``def`` lines of enclosing
    functions) carries a suppression for ``rule``.  ``entries`` exposes
    every suppression with its line and whether a ``: reason`` string
    follows — the ``suppression-without-reason`` meta-rule and the
    suppression-budget accounting read it.
    """

    def __init__(self, source: str) -> None:
        self.line_allows: dict[int, set[str]] = {}
        self.file_allows: set[str] = set()
        #: (line, rules, has_reason, is_file_level)
        self.entries: list[tuple[int, tuple[str, ...], bool, bool]] = []
        for lineno, line in _comment_lines(source):
            m = _ALLOW_RE.search(line)
            if m:
                rules = tuple(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
                has_reason = m.group(2) == ":"
                self.line_allows.setdefault(lineno, set()).update(rules)
                self.entries.append((lineno, rules, has_reason, False))
            m = _ALLOW_FILE_RE.search(line)
            if m:
                rules = tuple(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
                has_reason = m.group(2) == ":"
                self.file_allows.update(rules)
                self.entries.append((lineno, rules, has_reason, True))

    def allows(self, rule: str, lines) -> bool:
        if rule in self.file_allows or "*" in self.file_allows:
            return True
        for line in lines:
            found = self.line_allows.get(line, ())
            if rule in found or "*" in found:
                return True
        return False


# ----------------------------------------------------------------------
# structural protection (lexical release-on-all-paths)
# ----------------------------------------------------------------------


def build_parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing_function_lines(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> list[int]:
    """Line numbers of the finding plus every enclosing ``def`` line."""
    lines = [getattr(node, "lineno", 0)]
    end = getattr(node, "end_lineno", None)
    if end is not None:
        lines.append(end)
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lines.append(cur.lineno)
        cur = parents.get(cur)
    return lines


def _contains_cleanup(nodes: list[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and call_attr(node) in (
                CLEANUP_ATTRS
            ):
                return True
    return False


def _try_cleans_up(try_node: ast.Try) -> bool:
    if _contains_cleanup(try_node.finalbody):
        return True
    for handler in try_node.handlers:
        if _contains_cleanup(handler.body):
            return True
    return False


def _is_descendant(
    node: ast.AST, ancestor: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    cur = node
    while cur is not None:
        if cur is ancestor:
            return True
        cur = parents.get(cur)
    return False


def structurally_protected(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    """True if the acquisition at ``node`` is lexically released.

    Accepted shapes: the call is inside the body of a ``try`` whose
    ``finally`` or handlers contain a cleanup call; the statement
    *immediately after* the call's statement is such a ``try`` (the
    canonical ``x = acquire(); try: ... finally: release(x)`` idiom);
    or the call sits in a ``with`` item (the manager owns the release).
    """
    cur: ast.AST | None = node
    while cur is not None:
        parent = parents.get(cur)
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Try):
            in_body = any(
                cur is stmt or _is_descendant(cur, stmt, parents)
                for stmt in parent.body
            )
            if in_body and _try_cleans_up(parent):
                return True
        cur = parent
    cur = node
    while cur is not None and not isinstance(
        cur, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        if isinstance(cur, ast.stmt):
            parent = parents.get(cur)
            for fieldname in ("body", "orelse", "finalbody"):
                block = getattr(parent, fieldname, None)
                if isinstance(block, list) and cur in block:
                    idx = block.index(cur)
                    if idx + 1 < len(block):
                        nxt = block[idx + 1]
                        if isinstance(nxt, ast.Try) and _try_cleans_up(
                            nxt
                        ):
                            return True
        cur = parents.get(cur)
    return False


# ----------------------------------------------------------------------
# file iteration
# ----------------------------------------------------------------------


def iter_py_files(paths) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files
