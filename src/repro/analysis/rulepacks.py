"""Cluster/server rule packs and the suppression meta-rule.

These rules guard the scale-out and serving layers the same way the
latch rules guard the tree core: each encodes a protocol invariant
that was violated (or nearly violated) at least once during
development, phrased as a calibrated AST heuristic that is zero-noise
on the shipped tree.

Cluster pack
    ``scatter-result-unchecked``
        A ``_scatter``/``scatter`` call whose ack map is discarded
        (bare expression statement).  The ack map is the only evidence
        of which partitions applied the operation; dropping it turns a
        partial failure into silent divergence.
    ``frame-without-crc``
        A function that packs a wire header and sends it on a
        channel/socket without ever computing a CRC.  Every frame on
        the worker RPC channel carries ``zlib.crc32`` (a torn frame
        must look like a dead worker, not a corrupt command).
    ``supervisor-blocking``
        An unbounded ``process/thread.join()`` in a cluster module.
        The supervisor is the hang detector of last resort; if *it*
        blocks forever on a zombie, the whole cluster wedges.

Server pack
    ``deadline-not-forwarded``
        A function that receives a deadline budget (``budget`` /
        ``deadline`` / ``timeout`` parameter) and calls into a
        downstream backend/cluster/rpc/channel receiver without
        passing anything derived from it.  A dropped budget re-opens
        the queue-wait + descent + RPC pile-up the admission layer
        exists to prevent (taint is propagated through one level of
        local assignment, so ``t = clamp(budget); x.call(timeout=t)``
        is recognized).
    ``retry-without-backoff``
        An attempt/retry loop that catches a failure and goes around
        again without any sleep/backoff call.  Tight retry loops
        defeat the ``RetryLater`` backpressure hints.
    ``unbounded-queue``
        A ``deque()``/``Queue()`` instance attribute with no
        ``maxlen``/``maxsize`` in a server/cluster module whose class
        neither drains it (``popleft``/``get``) nor length-checks it —
        an admission-bypass buffer that grows without bound.

Meta
    ``suppression-without-reason``
        Every surviving ``# lint: allow(rule)`` must carry a
        ``: reason`` string; the suppression budget is audited in CI
        and a reasonless entry is unreviewable.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.common import (
    Finding,
    SuppressionIndex,
    build_parent_map,
    call_attr,
    enclosing_function_lines,
    keyword_arg,
    receiver_text,
)

CLUSTER_RULES: dict[str, str] = {
    "scatter-result-unchecked": "scatter ack map discarded",
    "frame-without-crc": "wire frame sent without CRC",
    "supervisor-blocking": "unbounded join() in a cluster module",
}

SERVER_RULES: dict[str, str] = {
    "deadline-not-forwarded": "deadline budget dropped before a "
    "downstream call",
    "retry-without-backoff": "retry loop without sleep/backoff",
    "unbounded-queue": "unbounded queue attribute in the serving path",
}

META_RULES: dict[str, str] = {
    "suppression-without-reason": "# lint: allow(...) without a "
    "`: reason`",
}

#: downstream receivers a deadline must survive into
_DOWNSTREAM_TOKENS = ("backend", "cluster", "rpc", "channel", "client")
_DEADLINE_PARAMS = frozenset(
    {"budget", "deadline", "timeout", "timeout_s", "deadline_s"}
)
_DEADLINE_KWARGS = frozenset(
    {"budget", "deadline", "timeout", "timeout_s", "deadline_s"}
)
_SEND_ATTRS = frozenset({"send", "sendall", "send_bytes"})
_SLEEP_TOKENS = ("sleep", "backoff", "wait")


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - synthetic/degenerate AST
        return ""


def _attr_chain(call: ast.Call) -> str:
    """Dotted receiver chain of a call, ignoring subscripts and call
    arguments (``self.metrics.counter("cluster.x").inc()`` has the
    chain ``self.metrics.counter`` for the ``.inc`` — the *string*
    argument must not make it look like a cluster receiver)."""
    node = call.func
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    return ".".join(reversed(parts))


def _is_cluster_path(path: Path) -> bool:
    return "cluster" in path.parts


def _is_server_scope(path: Path) -> bool:
    return "server" in path.parts or "cluster" in path.parts


class _PackChecker:
    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self.supp = SuppressionIndex(source)
        self.parents = build_parent_map(tree)

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        lines = enclosing_function_lines(node, self.parents)
        if self.supp.allows(rule, lines):
            return
        self.findings.append(
            Finding(str(self.path), node.lineno, rule, message)
        )

    # -- cluster pack ---------------------------------------------------

    def check_scatter_result(self) -> None:
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and call_attr(node.value) in ("scatter", "_scatter")
            ):
                self._report(
                    "scatter-result-unchecked",
                    node,
                    "scatter ack map discarded; a partial failure "
                    "becomes silent divergence — bind the result and "
                    "check coverage",
                )

    def check_frame_crc(self) -> None:
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            packs = False
            send_node = None
            mentions_crc = False
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    attr = call_attr(node)
                    if attr == "pack":
                        packs = True
                    if attr in _SEND_ATTRS and any(
                        t in receiver_text(node).lower()
                        for t in ("sock", "conn", "chan", "pipe")
                    ):
                        send_node = node
                if isinstance(node, ast.Name) and "crc" in node.id.lower():
                    mentions_crc = True
                if (
                    isinstance(node, ast.Attribute)
                    and "crc" in node.attr.lower()
                ):
                    mentions_crc = True
            if packs and send_node is not None and not mentions_crc:
                self._report(
                    "frame-without-crc",
                    send_node,
                    f"`{fn.name}` packs a wire frame and sends it "
                    "without a CRC; a torn frame must fail the "
                    "checksum, not parse as garbage",
                )

    def check_supervisor_blocking(self) -> None:
        if not _is_cluster_path(self.path):
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_attr(node) != "join":
                continue
            recv = receiver_text(node).lower()
            if not any(
                t in recv for t in ("process", "thread", "worker")
            ):
                continue
            if node.args or keyword_arg(node, "timeout") is not None:
                continue
            self._report(
                "supervisor-blocking",
                node,
                "unbounded join() in a cluster module; a zombie "
                "worker wedges the supervisor — pass timeout=",
            )

    # -- server pack ----------------------------------------------------

    def check_deadline_forwarded(self) -> None:
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {
                a.arg
                for a in (
                    fn.args.args
                    + fn.args.posonlyargs
                    + fn.args.kwonlyargs
                )
            }
            tainted = params & _DEADLINE_PARAMS
            if not tainted:
                continue
            # propagate taint through one level of local assignment
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and isinstance(
                    node.targets[0], ast.Name
                ):
                    text = _unparse(node.value)
                    if any(t in text for t in tainted):
                        tainted = tainted | {node.targets[0].id}
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue  # RPCs are method calls; a bare name is a
                    # constructor/helper (ClusterError, PipelinedClient)
                if not node.args and not node.keywords:
                    continue  # zero-arg probes can't carry a budget
                recv = _attr_chain(node).lower()
                if not any(t in recv for t in _DOWNSTREAM_TOKENS):
                    continue
                if "router" in recv:
                    continue  # routing tables are local, not RPCs
                if call_attr(node) in (
                    "close",
                    "health",
                    "snapshot",
                    "shutdown",
                ):
                    continue
                text = _unparse(node)
                if any(t in text for t in tainted) or any(
                    kw.arg in _DEADLINE_KWARGS
                    for kw in node.keywords
                    if kw.arg
                ):
                    continue
                self._report(
                    "deadline-not-forwarded",
                    node,
                    f"`{fn.name}` holds a deadline budget "
                    f"({', '.join(sorted(tainted & _DEADLINE_PARAMS))}) "
                    "but this downstream call drops it; forward the "
                    "remaining budget as timeout=",
                )

    def check_retry_backoff(self) -> None:
        for node in ast.walk(self.tree):
            loop_var = ""
            if isinstance(node, ast.For) and isinstance(
                node.target, ast.Name
            ):
                loop_var = node.target.id.lower()
            elif isinstance(node, ast.While):
                loop_var = _unparse(node.test).lower()
            else:
                continue
            if not any(
                t in loop_var for t in ("attempt", "retr", "tries")
            ):
                continue
            catches = any(
                isinstance(n, ast.ExceptHandler)
                for stmt in node.body
                for n in ast.walk(stmt)
            )
            if not catches:
                continue
            sleeps = False
            for stmt in node.body:
                for n in ast.walk(stmt):
                    if isinstance(n, ast.Call) and any(
                        t in call_attr(n).lower() for t in _SLEEP_TOKENS
                    ):
                        sleeps = True
            if not sleeps:
                self._report(
                    "retry-without-backoff",
                    node,
                    "retry loop never sleeps between attempts; honor "
                    "the RetryLater hint or add bounded backoff",
                )

    def check_unbounded_queue(self) -> None:
        if not _is_server_scope(self.path):
            return
        for cls in ast.walk(self.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            cls_text = _unparse(cls)
            for node in ast.walk(cls):
                value = None
                target = None
                if isinstance(node, ast.Assign):
                    value, target = node.value, node.targets[0]
                elif isinstance(node, ast.AnnAssign):
                    value, target = node.value, node.target
                if not isinstance(value, ast.Call):
                    continue
                if call_attr(value) not in ("deque", "Queue"):
                    continue
                if value.args or any(
                    kw.arg in ("maxlen", "maxsize")
                    for kw in value.keywords
                ):
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                drained = (
                    "popleft" in cls_text
                    or f"{attr}.get(" in cls_text
                    or f"len(self.{attr})" in cls_text
                )
                if not drained:
                    self._report(
                        "unbounded-queue",
                        node,
                        f"`self.{attr}` is an unbounded queue the "
                        "class never drains or length-checks; bound "
                        "it or admission-check producers",
                    )

    # -- meta -----------------------------------------------------------

    def check_suppression_reasons(self) -> None:
        for lineno, rules, has_reason, _file_level in self.supp.entries:
            if has_reason:
                continue
            self.findings.append(
                Finding(
                    str(self.path),
                    lineno,
                    "suppression-without-reason",
                    "suppression for "
                    f"{', '.join(rules) or '<empty>'} carries no "
                    "`: reason`; justify it or remove it",
                )
            )

    def run(self) -> list[Finding]:
        self.check_scatter_result()
        self.check_frame_crc()
        self.check_supervisor_blocking()
        self.check_deadline_forwarded()
        self.check_retry_backoff()
        self.check_unbounded_queue()
        self.check_suppression_reasons()
        return self.findings


def check_files(files: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in files:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # lint reports parse errors
        findings.extend(_PackChecker(path, source, tree).run())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
