"""One-shot static verifier: every protocol pass, one exit bitmask.

Usage::

    PYTHONPATH=src python -m repro.analysis.verify src/repro \\
        --artifact-dir artifacts --max-seconds 30

Runs, over one shared call-graph build:

* the interprocedural latch/pin type-state pass,
* the lexical rules (I/O-under-latch, fault handling, ...),
* the static lock-order extraction + cycle check,
* the cluster and server rule packs,
* the suppression meta-rule and the suppression budget.

Exit code is a bitmask so CI can tell *which* family regressed:

===============  ===
typestate          1
lock-order cycle   2
lexical            4
cluster pack       8
server pack       16
suppression meta  32
time budget       64
===============  ===

Artifacts (``--artifact-dir``): ``findings.json`` (every finding with
its family) and ``lock_graph.json`` (the full static acquisition
graph: nodes, edges with sample sites, blessed cycles, detected
cycles) — both deterministic, so CI diffs them across commits.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis.common import Finding, SuppressionIndex, iter_py_files

EXIT_TYPESTATE = 1
EXIT_LOCKORDER = 2
EXIT_LEXICAL = 4
EXIT_CLUSTER = 8
EXIT_SERVER = 16
EXIT_SUPPRESSION = 32
EXIT_TIME = 64

#: shipped-tree suppression budget (acceptance: every survivor is a
#: documented precision limit, not a dodged finding)
DEFAULT_MAX_SUPPRESSIONS = 12

_TYPESTATE_RULES = frozenset({"latch-release", "pin-balance"})
_LEXICAL_RULES = frozenset(
    {
        "io-under-latch",
        "lock-wait-under-latch",
        "bare-except",
        "swallowed-fault",
        "parse-error",
    }
)


def _family(rule: str) -> tuple[str, int]:
    from repro.analysis.rulepacks import CLUSTER_RULES, SERVER_RULES

    if rule in _TYPESTATE_RULES:
        return "typestate", EXIT_TYPESTATE
    if rule == "lock-order-cycle":
        return "lockorder", EXIT_LOCKORDER
    if rule in CLUSTER_RULES:
        return "cluster", EXIT_CLUSTER
    if rule in SERVER_RULES:
        return "server", EXIT_SERVER
    if rule == "suppression-without-reason" or rule.startswith(
        "suppression-"
    ):
        return "suppression", EXIT_SUPPRESSION
    return "lexical", EXIT_LEXICAL


def count_suppressions(files: list[Path]) -> int:
    """Real (non-docstring) suppression comments across ``files``."""
    total = 0
    for path in files:
        total += len(SuppressionIndex(path.read_text()).entries)
    return total


def run(
    paths: list[str],
    artifact_dir: str | None = None,
    max_seconds: float | None = None,
    max_suppressions: int = DEFAULT_MAX_SUPPRESSIONS,
) -> tuple[int, list[Finding], dict]:
    """Run every pass; return (exit bitmask, findings, stats)."""
    from repro.analysis import callgraph as cg
    from repro.analysis import lockorder, rulepacks
    from repro.analysis.lint import _lexical_findings
    from repro.analysis.typestate import check_paths

    start = time.monotonic()
    files = iter_py_files(paths)

    graph = cg.build(files)
    findings: list[Finding] = []
    findings.extend(_lexical_findings(files))
    ts_findings, engine = check_paths(files, graph=graph)
    findings.extend(ts_findings)
    findings.extend(rulepacks.check_files(files))

    order = lockorder.analyze(files, graph=graph, ts_engine=engine)
    findings.extend(lockorder.findings_for(order))

    n_suppressions = count_suppressions(files)
    if n_suppressions > max_suppressions:
        findings.append(
            Finding(
                path=str(paths[0]) if paths else "<tree>",
                line=0,
                rule="suppression-budget-exceeded",
                message=(
                    f"{n_suppressions} suppressions exceed the budget "
                    f"of {max_suppressions}; burn one down before "
                    "adding another"
                ),
            )
        )

    elapsed = time.monotonic() - start
    exit_code = 0
    for finding in findings:
        exit_code |= _family(finding.rule)[1]
    if max_seconds is not None and elapsed > max_seconds:
        exit_code |= EXIT_TIME

    stats = {
        "files": len(files),
        "functions": len(graph.functions),
        "summaries": len(engine.summaries),
        "call_edges": sum(len(v) for v in graph.edges.values()),
        "resolved_calls": graph.resolved,
        "unresolved_calls": graph.unresolved,
        "lock_graph_nodes": len(order.nodes),
        "lock_graph_edges": len(order.edges),
        "suppressions": n_suppressions,
        "suppression_budget": max_suppressions,
        "findings": len(findings),
        "elapsed_seconds": round(elapsed, 3),
        "time_budget_seconds": max_seconds,
    }

    if artifact_dir is not None:
        out = Path(artifact_dir)
        out.mkdir(parents=True, exist_ok=True)
        payload = {
            "stats": stats,
            "findings": [
                dict(f.to_dict(), family=_family(f.rule)[0])
                for f in sorted(
                    findings, key=lambda f: (f.path, f.line, f.rule)
                )
            ],
        }
        (out / "findings.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        lockorder.write_artifact(order, out / "lock_graph.json")

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return exit_code, findings, stats


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description="whole-program protocol verifier "
        "(typestate + lock order + rule packs)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="write findings.json and lock_graph.json here",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (bit 64) if the analysis takes longer than this",
    )
    parser.add_argument(
        "--max-suppressions",
        type=int,
        default=DEFAULT_MAX_SUPPRESSIONS,
        help="suppression budget for the shipped tree "
        f"(default {DEFAULT_MAX_SUPPRESSIONS})",
    )
    args = parser.parse_args(argv)
    paths = args.paths or ["src/repro"]

    exit_code, findings, stats = run(
        paths,
        artifact_dir=args.artifact_dir,
        max_seconds=args.max_seconds,
        max_suppressions=args.max_suppressions,
    )
    for finding in findings:
        family, _bit = _family(finding.rule)
        print(f"[{family}] {finding}")
    print(
        f"{stats['findings']} findings | "
        f"{stats['functions']} functions, "
        f"{stats['summaries']} summaries, "
        f"{stats['lock_graph_edges']} lock-order edges | "
        f"{stats['suppressions']}/{stats['suppression_budget']} "
        f"suppressions | {stats['elapsed_seconds']}s"
        + (
            f" (budget {stats['time_budget_seconds']}s)"
            if stats["time_budget_seconds"]
            else ""
        ),
        file=sys.stderr,
    )
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
