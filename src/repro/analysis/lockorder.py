"""Static lock-order extraction and cycle-freedom proof.

The runtime lockdep witness (:mod:`repro.analysis.lockdep`) learns the
acquisition graph from *executed* interleavings; this pass derives the
same graph from source, so the global latch order of the paper (root →
leaf, left → right along rightlinks, child → parent only in the
back-up phase, buffer shard mutexes innermost, lock-manager waits
never under a latch unless ``wait=False``) is proved over **all**
acquisition sites, not just the ones a test happened to drive.

Every acquisition site is labeled with a *role*, namespaced by the
owning class (or module stem) so that the GiST protocol's child→parent
back-up edge and the coupling baseline's deliberate parent→child hold
cannot alias into a false cycle:

* ``GiST:root`` / ``GiST:node`` / ``GiST:chain`` / ``GiST:parent`` /
  ``GiST:probe`` — ``pool.fix`` sites classified by argument text and
  enclosing-function name;
* ``BufferPool:shard`` — the per-shard clock mutex (modelled as
  acquired-and-released *inside* every ``fix``/``pin``, which is why
  the graph has latch→shard edges but never shard→latch);
* ``LockManager:wait`` — transactional lock calls (the lexical linter
  separately enforces ``wait=False`` under latches);
* ``<Class>:<attr>`` — named mutexes (``self._mutex``, partition
  locks, ...).

Edges are emitted (a) between lexically nested acquisitions inside one
function and (b) at call sites, from every held role to every role in
the callee's transitive may-acquire summary (computed bottom-up over
the call-graph SCCs).  Holding knowledge crosses call boundaries in
the other direction too: a helper whose type-state summary says it
*returns a held frame* (``transfers-ownership-to-caller``) pushes its
role onto the caller's held stack at the binding site.

A cycle in the resulting graph fails verification unless it matches a
*blessed* entry — a cycle the runtime witness has validated is ordered
by a key the static roles cannot see (pid order along a rightlink
chain, ascending partition index, top-down tree order in the coupling
baseline).  The graph is emitted as a JSON artifact so CI can diff it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.common import (
    Finding,
    call_attr,
    is_false_const,
    keyword_arg,
    receiver_text,
)

#: cycles the runtime witness has blessed: (roles, ordering key).
#: a detected cycle passes iff its role set is a subset of a blessed set
BLESSED_CYCLES: list[tuple[frozenset, str]] = [
    (
        frozenset({"GiST:node", "GiST:parent"}),
        "split back-up holds the child while latching its parent "
        "(Figure 4), strictly bottom-up by tree level; the descent "
        "never couples latches (rightlinks instead of crabbing) and "
        "chain walks go strictly left-to-right in pid order, so no "
        "top-down hold can oppose it (paper §4.2; runtime witness: "
        "lockdep latch edges under the insert battery)",
    ),
    (
        frozenset({"LinkTree:node", "LinkTree:parent"}),
        "link-baseline split propagation is strictly bottom-up: "
        "_split_internal_link re-fixes the grandparent only while "
        "holding the (lower-level) parent",
    ),
    (
        frozenset({"_HeldPathTree:node"}),
        "the coupling/subtree baselines hold the whole root-to-leaf "
        "path by design, ordered strictly top-down by tree level "
        "(their defining behavior; never mixed with the link "
        "protocol's bottom-up back-up in one pool)",
    ),
    (
        frozenset({"maintenance:node"}),
        "vacuum drain fixes left sibling, victim, then parent — "
        "within-level left-to-right, then bottom-up, consistent with "
        "splits (comment at maintenance._try_delete_node)",
    ),
    (
        frozenset({"PartitionedDatabase:_locks"}),
        "per-partition scatter locks are acquired in ascending "
        "partition index (targets are sorted before the acquire loop)",
    ),
]


@dataclass
class LockOrderGraph:
    #: (src, dst) -> sample sites "path:line"
    edges: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    nodes: set = field(default_factory=set)

    def add_edge(self, src: str, dst: str, site: str) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        sites = self.edges.setdefault((src, dst), [])
        if len(sites) < 8 and site not in sites:
            sites.append(site)

    def successors(self, node: str) -> list[str]:
        return [d for (s, d) in self.edges if s == node]

    def cycles(self) -> list[frozenset]:
        """Strongly connected components with an internal edge (a
        multi-node SCC or a self-loop) — each is a cycle witness."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set = set()
        stack: list[str] = []
        out: list[frozenset] = []
        counter = [0]
        for root in sorted(self.nodes):
            if root in index:
                continue
            work = [(root, iter(self.successors(root)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        if member == node:
                            break
                    if len(comp) > 1 or (
                        (comp[0], comp[0]) in self.edges
                    ):
                        out.append(frozenset(comp))
        return out

    def unblessed_cycles(self) -> list[frozenset]:
        bad = []
        for cycle in self.cycles():
            if not any(
                cycle <= blessed for blessed, _why in BLESSED_CYCLES
            ):
                bad.append(cycle)
        return bad

    def kind_projection(self) -> set:
        """Project role edges to (kind, kind) — the granularity the
        runtime lockdep witness records — for the superset cross-check."""

        def kind(role: str) -> str:
            if role.endswith(":shard"):
                return "shard"
            if role.startswith("LockManager:"):
                return "lock"
            return "latch"

        return {(kind(s), kind(d)) for (s, d) in self.edges}

    def to_json(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "edges": [
                {"src": s, "dst": d, "sites": sites}
                for (s, d), sites in sorted(self.edges.items())
            ],
            "blessed": [
                {"roles": sorted(roles), "why": why}
                for roles, why in BLESSED_CYCLES
            ],
            "cycles": [sorted(c) for c in self.cycles()],
            "unblessed_cycles": [
                sorted(c) for c in self.unblessed_cycles()
            ],
        }


# ----------------------------------------------------------------------
# role classification
# ----------------------------------------------------------------------


def _namespace(fn: FunctionInfo) -> str:
    if fn.cls:
        return fn.cls
    return fn.module.rsplit(".", 1)[-1]


def _fix_role(fn: FunctionInfo, call: ast.Call) -> str:
    ns = _namespace(fn)
    argtext = ""
    if call.args:
        try:
            argtext = ast.unparse(call.args[0]).lower()
        except Exception:
            argtext = ""
    if "root" in argtext:
        return f"{ns}:root"
    if any(t in argtext for t in ("link", "chain", "next", "right")):
        return f"{ns}:chain"
    name = fn.name
    if name.startswith("_fix_parent") or name in (
        "_expand_up",
        "_update_bp",
    ):
        return f"{ns}:parent"
    if name.startswith(("_redescend", "_descend")):
        return f"{ns}:probe"
    return f"{ns}:node"


def _return_role(info: FunctionInfo | None) -> str:
    """Role of the held frame a summary-transferring helper returns."""
    if info is None:
        return "frame:node"
    ns = _namespace(info)
    name = info.name
    if name.startswith("_fix_parent") or name.startswith("_redescend"):
        return f"{ns}:parent"
    if "chain" in name or "follow" in name:
        return f"{ns}:chain"
    return f"{ns}:node"


def _is_lockmanager_call(call: ast.Call) -> bool:
    if call_attr(call) != "acquire":
        return False
    recv = receiver_text(call)
    last = recv.rsplit(".", 1)[-1].lower()
    return last in ("locks", "lock_manager") or recv.lower().endswith(
        "lock_manager"
    )


def _mutex_role(fn: FunctionInfo, recv: str) -> str:
    ns = _namespace(fn)
    # strip a self./subscript prefix down to the salient attribute
    name = recv
    if "[" in name:
        name = name.split("[", 1)[0]
    name = name.rsplit(".", 1)[-1] or name
    return f"{ns}:{name}"


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


class LockOrderAnalyzer:
    """Walks every function with a lexical held-stack of roles; callee
    may-acquire summaries and held-return transfers cross the call
    boundary."""

    def __init__(self, graph: CallGraph, ts_engine=None) -> None:
        self.graph = graph
        self.ts = ts_engine
        self.may_acquire: dict[str, set] = {}
        self.order = LockOrderGraph()
        #: caller qname -> {(lineno, col) -> callee qname}
        self.callsites: dict[str, dict[tuple[int, int], str]] = {}
        for qname, sites in graph.edges.items():
            table = self.callsites.setdefault(qname, {})
            for site in sites:
                table[(site.lineno, site.col)] = site.callee

    # -- phase 1: transitive may-acquire summaries ----------------------
    def compute_summaries(self) -> None:
        for comp in self.graph.sccs():
            for qname in comp:
                self.may_acquire.setdefault(qname, set())
            for _ in range(4):
                changed = False
                for qname in comp:
                    fn = self.graph.functions.get(qname)
                    if fn is None:
                        continue
                    roles = self._own_roles(fn)
                    for site in self.graph.edges.get(qname, ()):
                        roles |= self.may_acquire.get(
                            site.callee, set()
                        )
                    if roles != self.may_acquire[qname]:
                        self.may_acquire[qname] = roles
                        changed = True
                if not changed:
                    break

    def _own_roles(self, fn: FunctionInfo) -> set:
        roles: set = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            role = self._acquire_role(fn, node)
            if role is not None:
                roles.add(role)
                if role.split(":", 1)[-1] in (
                    "root",
                    "node",
                    "chain",
                    "parent",
                    "probe",
                ):
                    # every fix pins through the buffer shard mutex
                    roles.add("BufferPool:shard")
        return roles

    def _acquire_role(
        self, fn: FunctionInfo, call: ast.Call
    ) -> str | None:
        attr = call_attr(call)
        if attr in ("fix", "fixed"):
            return _fix_role(fn, call)
        if _is_lockmanager_call(call):
            return "LockManager:wait"
        if attr in ("acquire", "_locked", "locked"):
            recv = receiver_text(call)
            low = recv.lower()
            if attr == "_locked" or "shard" in low:
                return "BufferPool:shard"
            if attr == "acquire" and any(
                t in low for t in ("latch", "lock", "mutex", "cond")
            ):
                if "latch" in low:
                    return f"{_namespace(fn)}:node"
                return _mutex_role(fn, recv)
        return None

    # -- phase 2: per-function edge extraction --------------------------
    def extract(self) -> LockOrderGraph:
        for qname, fn in self.graph.functions.items():
            self._scan_function(qname, fn)
        return self.order

    def _scan_function(self, qname: str, fn: FunctionInfo) -> None:
        held: list[tuple[str, str | None]] = []  # (role, bound var)
        self._scan_block(qname, fn, fn.node.body, held)

    def _site(self, fn: FunctionInfo, node: ast.AST) -> str:
        return f"{fn.path}:{getattr(node, 'lineno', fn.lineno)}"

    def _push(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        held: list,
        role: str,
        var: str | None,
    ) -> None:
        site = self._site(fn, node)
        for held_role, _var in held:
            self.order.add_edge(held_role, role, site)
        # a fix reaches through the shard mutex while latches are held
        if role.split(":", 1)[-1] in (
            "root",
            "node",
            "chain",
            "parent",
            "probe",
        ):
            for held_role, _var in held:
                self.order.add_edge(
                    held_role, "BufferPool:shard", site
                )
        held.append((role, var))

    def _pop_var(self, held: list, var: str | None) -> None:
        if var is not None:
            for i in range(len(held) - 1, -1, -1):
                if held[i][1] == var:
                    del held[i]
                    return
        if held:
            held.pop()

    def _scan_block(
        self, qname: str, fn: FunctionInfo, stmts, held: list
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(qname, fn, stmt, held)

    def _scan_stmt(self, qname, fn, stmt, held: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = 0
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    role = self._acquire_role(fn, expr)
                    if role is not None:
                        var = (
                            item.optional_vars.id
                            if isinstance(item.optional_vars, ast.Name)
                            else None
                        )
                        self._push(fn, expr, held, role, var)
                        entered += 1
                        continue
                    self._scan_call(qname, fn, expr, held)
                else:
                    try:
                        text = ast.unparse(expr).lower()
                    except Exception:
                        text = ""
                    if any(
                        text.endswith(s)
                        for s in ("lock", "mutex", "cond", "_cv")
                    ):
                        self._push(
                            fn,
                            expr,
                            held,
                            _mutex_role(fn, text),
                            None,
                        )
                        entered += 1
            self._scan_block(qname, fn, stmt.body, held)
            for _ in range(entered):
                if held:
                    held.pop()
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(qname, fn, stmt.body, held)
            for handler in stmt.handlers:
                self._scan_block(qname, fn, handler.body, held)
            self._scan_block(qname, fn, stmt.orelse, held)
            self._scan_block(qname, fn, stmt.finalbody, held)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(qname, fn, stmt.test, held)
            self._scan_block(qname, fn, stmt.body, held)
            self._scan_block(qname, fn, stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(qname, fn, stmt.test, held)
            self._scan_block(qname, fn, stmt.body, held)
            self._scan_block(qname, fn, stmt.body, held)
            self._scan_block(qname, fn, stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(qname, fn, stmt.iter, held)
            # scan the body twice: an acquire the first pass leaves
            # held (e.g. the partition-lock scatter loop) meets its
            # own next-iteration instance on the second pass, which
            # surfaces loop-carried multi-acquisition as a self-edge
            self._scan_block(qname, fn, stmt.body, held)
            self._scan_block(qname, fn, stmt.body, held)
            self._scan_block(qname, fn, stmt.orelse, held)
            return
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Call
        ):
            var = (
                stmt.targets[0].id
                if len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                else None
            )
            self._scan_call(qname, fn, stmt.value, held, bind=var)
            return
        self._scan_expr(qname, fn, stmt, held)

    def _scan_expr(self, qname, fn, node, held: list) -> None:
        if node is None:
            return
        calls = [
            n for n in ast.walk(node) if isinstance(n, ast.Call)
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            self._scan_call(qname, fn, call, held)

    def _scan_call(
        self, qname, fn, call: ast.Call, held: list, bind=None
    ) -> None:
        attr = call_attr(call)
        role = self._acquire_role(fn, call)
        if role is not None:
            nowait = keyword_arg(call, "nowait")
            if attr == "fix" and (
                nowait is None or is_false_const(nowait)
            ):
                self._push(fn, call, held, role, bind)
                return
            if attr == "acquire" and role != "LockManager:wait":
                recv = receiver_text(call)
                self._push(fn, call, held, role, recv or bind)
                return
            if role == "LockManager:wait":
                site = self._site(fn, call)
                for held_role, _var in held:
                    self.order.add_edge(
                        held_role, "LockManager:wait", site
                    )
                return
        if attr == "unfix":
            var = None
            if call.args and isinstance(call.args[0], ast.Name):
                var = call.args[0].id
            self._pop_var(held, var)
            return
        if attr == "release":
            recv = receiver_text(call)
            for i in range(len(held) - 1, -1, -1):
                if held[i][1] == recv:
                    del held[i]
                    return
            low = recv.lower()
            if any(
                t in low for t in ("latch", "lock", "mutex", "cond")
            ):
                self._pop_var(held, None)
            return
        if attr == "release_thread_fixes":
            held.clear()
            return
        # plain call: compose the callee's may-acquire roles
        key = (call.lineno, call.col_offset)
        callee = self.callsites.get(qname, {}).get(key)
        if callee is not None and held:
            site = self._site(fn, call)
            for role2 in sorted(self.may_acquire.get(callee, ())):
                for held_role, _var in held:
                    self.order.add_edge(held_role, role2, site)
        # ownership transfer: helper returns a held frame
        if callee is not None and bind is not None and self.ts:
            summ = self.ts.summaries.get(callee)
            if summ is not None and summ.returns_held in (
                "yes",
                "optional",
            ):
                info = self.graph.functions.get(callee)
                held.append((_return_role(info), bind))


def analyze(
    paths: list[Path],
    graph: CallGraph | None = None,
    ts_engine=None,
) -> LockOrderGraph:
    from repro.analysis import callgraph as cg
    from repro.analysis.typestate import TypeStateEngine

    if graph is None:
        graph = cg.build(paths)
    if ts_engine is None:
        # held-return transfers (``parent = self._fix_parent(...)``)
        # only cross the call boundary through type-state summaries;
        # without them the back-up edges would silently vanish
        ts_engine = TypeStateEngine(graph)
        ts_engine.compute_summaries()
    analyzer = LockOrderAnalyzer(graph, ts_engine)
    analyzer.compute_summaries()
    return analyzer.extract()


def findings_for(graph: LockOrderGraph) -> list[Finding]:
    out = []
    for cycle in graph.unblessed_cycles():
        roles = sorted(cycle)
        sample = ""
        for (s, d), sites in sorted(graph.edges.items()):
            if s in cycle and d in cycle:
                sample = sites[0] if sites else ""
                break
        out.append(
            Finding(
                path=sample.rsplit(":", 1)[0] if sample else "<graph>",
                line=int(sample.rsplit(":", 1)[1]) if sample else 0,
                rule="lock-order-cycle",
                message=(
                    "static acquisition cycle not blessed by the "
                    f"runtime witness: {' -> '.join(roles)}"
                ),
            )
        )
    return out


def write_artifact(graph: LockOrderGraph, path: Path) -> None:
    path.write_text(json.dumps(graph.to_json(), indent=2) + "\n")
