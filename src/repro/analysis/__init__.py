"""Mechanical protocol enforcement (DESIGN.md §10).

Two prongs keep the paper's latch/lock/WAL invariants machine-checked
instead of docstring-checked:

* :mod:`repro.analysis.lint` — a static, AST-based linter
  (``python -m repro.analysis.lint src/repro``) enforcing the lexical
  discipline: balanced latch/pin acquisition, no I/O-class call and no
  lock wait inside a latch-held region, no swallowed storage faults.
* :mod:`repro.analysis.lockdep` — a runtime lock-order witness wired
  into :class:`~repro.database.Database` via the ``protocol_checks``
  knob: records the acquisition graph across latches, buffer-shard
  mutexes and lock-manager queues, and flags potential-deadlock cycles,
  latch-held-across-I/O, latch-held-across-lock-wait and WAL-rule
  violations at the moment they occur.
"""

from repro.analysis.lockdep import (  # noqa: F401
    LockdepWitness,
    ProtocolViolation,
    all_witnesses,
    drain_new_violations,
)
