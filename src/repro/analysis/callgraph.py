"""Whole-program call graph over a Python source tree.

The protocol verifier (:mod:`repro.analysis.typestate`,
:mod:`repro.analysis.lockorder`) needs to follow latch/pin ownership
*across* call boundaries — hand-over-hand crabbing acquires in one
function and releases in another, and the paper's global latch order is
only visible when acquisition sites are composed through their callers.
This module builds the graph those passes walk:

* every ``def`` is indexed under a module-qualified name
  (``repro.gist.tree.GiST._locate_leaf``);
* call expressions are resolved with deterministic heuristics —
  ``self.m()`` through the receiver class and its bases, ``obj.m()``
  through local constructor assignments (``obj = ClassName(...)``),
  ``self.attr.m()`` through ``__init__`` assignments and annotations,
  well-known attribute names (``pool``, ``log``, ``locks``, ...)
  through a role table, and bare names through the import table;
* strongly connected components (Tarjan) give the bottom-up order the
  summary computation consumes, so recursion (``_search_coupled``)
  converges by fixpoint instead of diverging.

Resolution is best-effort by design: an unresolved call produces *no*
edge (and is counted), never a guess outside the indexed tree.  The
type-state pass treats unresolved calls as effect-free, which is safe
for the latch discipline because every latch-touching callee lives in
the indexed tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: well-known attribute-name -> class-name roles used when no assignment
#: or annotation pins the receiver type (the database assembly wires
#: these names consistently across the tree, pool, txn and wal layers)
ATTR_ROLE_TYPES: dict[str, str] = {
    "pool": "BufferPool",
    "store": "PageStore",
    "log": "LogManager",
    "locks": "LockManager",
    "predicates": "PredicateManager",
    "supervisor": "Supervisor",
    "cluster": "PartitionedDatabase",
}


@dataclass
class FunctionInfo:
    """One indexed ``def``: identity plus the AST needed by the passes."""

    qname: str
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: Path
    lineno: int


@dataclass
class ClassInfo:
    name: str
    module: str
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class-name, from __init__ assignments and
    #: annotated attribute declarations
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    caller: str
    callee: str
    lineno: int
    col: int


class CallGraph:
    """Index of every function plus resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: class name (unqualified) -> ClassInfo list (dispatch heuristic)
        self.by_class_name: dict[str, list[ClassInfo]] = {}
        #: module -> {local name -> qname-or-module it refers to}
        self.imports: dict[str, dict[str, str]] = {}
        #: module -> {function name -> qname} for module-level defs
        self.module_funcs: dict[str, dict[str, str]] = {}
        self.edges: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}
        self.unresolved = 0
        self.resolved = 0

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def index_paths(self, paths: list[Path]) -> None:
        parsed: list[tuple[str, Path, ast.Module]] = []
        for path in paths:
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError:
                continue
            module = module_name(path)
            parsed.append((module, path, tree))
            self._index_module(module, path, tree)
        for module, path, tree in parsed:
            self._link_module(module, tree)

    def _index_module(
        self, module: str, path: Path, tree: ast.Module
    ) -> None:
        imports: dict[str, str] = {}
        funcs: dict[str, str] = {}
        self.imports[module] = imports
        self.module_funcs[module] = funcs
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qname = f"{module}.{node.name}"
                info = FunctionInfo(
                    qname, module, None, node.name, node, path, node.lineno
                )
                self.functions[qname] = info
                funcs[node.name] = qname
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, path, node)

    def _index_class(
        self, module: str, path: Path, node: ast.ClassDef
    ) -> None:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        cls = ClassInfo(node.name, module, bases)
        self.classes[f"{module}.{node.name}"] = cls
        self.by_class_name.setdefault(node.name, []).append(cls)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{module}.{node.name}.{item.name}"
                info = FunctionInfo(
                    qname,
                    module,
                    node.name,
                    item.name,
                    item,
                    path,
                    item.lineno,
                )
                self.functions[qname] = info
                cls.methods[item.name] = info
                if item.name == "__init__":
                    self._harvest_attr_types(cls, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                hint = _annotation_class(item.annotation)
                if hint:
                    cls.attr_types[item.target.id] = hint

    @staticmethod
    def _harvest_attr_types(cls: ClassInfo, init) -> None:
        """``self.x = ClassName(...)`` / ``self.x: T = ...`` in __init__."""
        for node in ast.walk(init):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                hint = _annotation_class(node.annotation)
                if (
                    hint
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types.setdefault(target.attr, hint)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
            ):
                cls.attr_types.setdefault(target.attr, value.func.id)

    # ------------------------------------------------------------------
    # linking
    # ------------------------------------------------------------------
    def _link_module(self, module: str, tree: ast.Module) -> None:
        for info in self.functions.values():
            if info.module != module:
                continue
            sites = self.edges.setdefault(info.qname, [])
            local_types = self._local_var_types(info.node)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(info, node, local_types)
                if callee is None:
                    self.unresolved += 1
                    continue
                self.resolved += 1
                site = CallSite(
                    info.qname, callee, node.lineno, node.col_offset
                )
                sites.append(site)
                self.callers.setdefault(callee, []).append(site)

    @staticmethod
    def _local_var_types(fn) -> dict[str, str]:
        """``v = ClassName(...)`` assignments inside the function."""
        types: dict[str, str] = {}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
            ):
                types[node.targets[0].id] = node.value.func.id
        return types

    def _resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            # bare name: local module function, then imported function
            target = self.module_funcs.get(caller.module, {}).get(func.id)
            if target:
                return target
            imported = self.imports.get(caller.module, {}).get(func.id)
            if imported and imported in self.functions:
                return imported
            return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        recv = func.value
        # self.m(...)
        if isinstance(recv, ast.Name) and recv.id == "self" and caller.cls:
            found = self._lookup_method(
                caller.module, caller.cls, method
            )
            if found:
                return found
        # cls-qualified: ClassName.m(...) or imported module.func(...)
        if isinstance(recv, ast.Name):
            cls_name = local_types.get(recv.id, recv.id)
            found = self._method_by_class_name(
                cls_name, method, prefer_module=caller.module
            )
            if found:
                return found
            imported = self.imports.get(caller.module, {}).get(recv.id)
            if imported:
                dotted = f"{imported}.{method}"
                if dotted in self.functions:
                    return dotted
            # receiver-name role heuristic (``pool.fix`` in a local)
            found = self._method_by_role(recv.id, method)
            if found:
                return found
        # self.attr.m(...)
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and caller.cls
        ):
            cls = self.classes.get(f"{caller.module}.{caller.cls}")
            attr_cls = cls.attr_types.get(recv.attr) if cls else None
            if attr_cls:
                found = self._method_by_class_name(
                    attr_cls, method, prefer_module=caller.module
                )
                if found:
                    return found
            found = self._method_by_role(recv.attr, method)
            if found:
                return found
        # deep attribute chain: use the last attribute as a role name
        if isinstance(recv, ast.Attribute):
            found = self._method_by_role(recv.attr, method)
            if found:
                return found
        return None

    def _lookup_method(
        self, module: str, cls_name: str, method: str
    ) -> str | None:
        """Method lookup through the class and its (named) bases."""
        seen: set[str] = set()
        queue = [(module, cls_name)]
        while queue:
            mod, name = queue.pop(0)
            key = f"{mod}.{name}"
            if key in seen:
                continue
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                # base defined in another module: match by bare name
                for candidate in self.by_class_name.get(name, []):
                    cls = candidate
                    break
                if cls is None:
                    continue
            if method in cls.methods:
                return cls.methods[method].qname
            for base in cls.bases:
                queue.append((cls.module, base))
        return None

    def _method_by_class_name(
        self, cls_name: str, method: str, prefer_module: str | None = None
    ) -> str | None:
        candidates = self.by_class_name.get(cls_name, [])
        hit = None
        for cls in candidates:
            found = self._lookup_method(cls.module, cls.name, method)
            if found:
                if prefer_module and cls.module == prefer_module:
                    return found
                hit = hit or found
        return hit

    def _method_by_role(self, attr_name: str, method: str) -> str | None:
        cls_name = ATTR_ROLE_TYPES.get(attr_name)
        if cls_name is None:
            return None
        return self._method_by_class_name(cls_name, method)

    # ------------------------------------------------------------------
    # SCC order
    # ------------------------------------------------------------------
    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers), via iterative Tarjan."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[list[str]] = []
        counter = [0]

        def neighbors(q: str) -> list[str]:
            return [
                s.callee
                for s in self.edges.get(q, [])
                if s.callee in self.functions
            ]

        for root in self.functions:
            if root in index:
                continue
            work = [(root, iter(neighbors(root)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(neighbors(nxt))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        if member == node:
                            break
                    result.append(comp)
        return result


def module_name(path: Path) -> str:
    """Dotted module name for ``path`` (rooted at ``src`` when present)."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_class(node) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip("'\" |") or None
    return None


def build(paths: list[Path]) -> CallGraph:
    graph = CallGraph()
    graph.index_paths(paths)
    return graph
