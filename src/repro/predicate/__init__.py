"""Predicate locking: node-attached predicates for phantom avoidance."""

from repro.predicate.manager import (
    PredicateKind,
    PredicateLock,
    PredicateManager,
    PredicateStats,
)

__all__ = [
    "PredicateKind",
    "PredicateLock",
    "PredicateManager",
    "PredicateStats",
]
