"""The predicate manager (section 10.3).

Implements the node-attached predicate locks of the hybrid repeatable-read
mechanism (section 4.3).  The three data structures are exactly the ones
the paper lists:

* a list of predicates per transaction,
* a list of node attachments per predicate,
* a FIFO-ordered list of the predicates attached to each node.

Invariant (section 4.3): *if a search operation's predicate is consistent
with a node's BP, the predicate must be attached to that node.*  The tree
maintains it by attaching top-down during traversal, replicating on node
splits, and percolating during BP expansion; the manager provides those
operations.

Fairness / anti-starvation (section 10.3): predicates attached to a node
form a FIFO list; an insert operation attaches its key as an *insert
predicate* before checking, and only checks predicates **ahead of its
own** in the list.  Search operations symmetrically block on insert
predicates ahead of theirs, so a blocked insert can never be starved by
an endless stream of new scans.

Blocking "on a predicate" is delegated to the lock manager: waiting for
predicate P means S-locking the lock name ``("txn", P.owner)``, which its
owner holds in X mode from begin to termination.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable

from repro.lock.manager import LockManager
from repro.lock.modes import LockMode
from repro.storage.page import PageId
from repro.txn.manager import txn_lock_name


class PredicateKind(Enum):
    """What kind of operation registered the predicate."""

    #: a search operation's predicate (blocks inserts into its range)
    SEARCH = "search"
    #: an insert operation's key (lets scans queue fairly behind it, and
    #: implements the "= key" race-breaking predicates of section 8)
    INSERT = "insert"


@dataclass
class PredicateLock:
    """One registered predicate."""

    owner: int
    pred: object
    kind: PredicateKind
    seqno: int = field(default=0)
    #: node pids this predicate is currently attached to
    attachments: set[PageId] = field(default_factory=set)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class PredicateStats:
    """Counters for the hybrid-vs-pure comparison benchmarks (C2)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.attaches = 0
        self.checks = 0
        self.comparisons = 0
        self.conflicts = 0

    def note_check(self, comparisons: int, conflicts: int) -> None:
        """Record one conflict check and its comparison count."""
        with self._lock:
            self.checks += 1
            self.comparisons += comparisons
            self.conflicts += conflicts

    def note_attach(self, count: int = 1) -> None:
        """Record predicate attachments."""
        with self._lock:
            self.attaches += count

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        with self._lock:
            return {
                "attaches": self.attaches,
                "checks": self.checks,
                "comparisons": self.comparisons,
                "conflicts": self.conflicts,
            }


class PredicateManager:
    """Per-tree registry of node-attached predicate locks.

    Parameters
    ----------
    consistent:
        The tree extension's ``consistent(pred, key)`` function; the
        manager has no semantic knowledge of predicates beyond it
        (section 4.2's observation about generic predicate handling).
    """

    def __init__(self, consistent: Callable[[object, object], bool]) -> None:
        self.consistent = consistent
        self.stats = PredicateStats()
        self._mutex = threading.Lock()
        self._seq = itertools.count(1)
        #: xid -> predicates registered by that transaction
        self._by_txn: dict[int, list[PredicateLock]] = {}
        #: node pid -> FIFO list of attached predicates
        self._by_node: dict[PageId, list[PredicateLock]] = {}

    # ------------------------------------------------------------------
    # registration / attachment
    # ------------------------------------------------------------------
    def register(
        self, owner: int, pred: object, kind: PredicateKind
    ) -> PredicateLock:
        """Create a predicate lock owned by transaction ``owner``."""
        plock = PredicateLock(owner, pred, kind, seqno=next(self._seq))
        with self._mutex:
            self._by_txn.setdefault(owner, []).append(plock)
        return plock

    def attach(self, plock: PredicateLock, pid: PageId) -> None:
        """Attach the predicate to a node (idempotent, FIFO position)."""
        with self._mutex:
            if pid in plock.attachments:
                return
            plock.attachments.add(pid)
            self._by_node.setdefault(pid, []).append(plock)
        self.stats.note_attach()

    def detach(self, plock: PredicateLock, pid: PageId) -> None:
        """Remove one node attachment of the predicate."""
        with self._mutex:
            self._detach_locked(plock, pid)

    def _detach_locked(self, plock: PredicateLock, pid: PageId) -> None:
        if pid not in plock.attachments:
            return
        plock.attachments.discard(pid)
        node_list = self._by_node.get(pid)
        if node_list is not None:
            try:
                node_list.remove(plock)
            except ValueError:
                pass
            if not node_list:
                self._by_node.pop(pid, None)

    def unregister(self, plock: PredicateLock) -> None:
        """Remove the predicate and all of its attachments.

        Used when an insert operation finishes (its insert predicate and
        any unique-search "= key" predicates are released before end of
        transaction, section 8/10.3).
        """
        with self._mutex:
            for pid in list(plock.attachments):
                self._detach_locked(plock, pid)
            txn_list = self._by_txn.get(plock.owner)
            if txn_list is not None and plock in txn_list:
                txn_list.remove(plock)
                if not txn_list:
                    self._by_txn.pop(plock.owner, None)

    def release_transaction(self, xid: int) -> None:
        """Drop every predicate the transaction owns (at termination)."""
        with self._mutex:
            for plock in self._by_txn.pop(xid, []):
                for pid in list(plock.attachments):
                    self._detach_locked(plock, pid)

    # ------------------------------------------------------------------
    # conflict checking
    # ------------------------------------------------------------------
    def conflicting(
        self,
        pid: PageId,
        probe: object,
        *,
        kinds: Iterable[PredicateKind],
        exclude_owner: int,
        before: PredicateLock | None = None,
    ) -> list[PredicateLock]:
        """Predicates on node ``pid`` that conflict with ``probe``.

        Only predicates of the given ``kinds`` owned by other
        transactions are considered; with ``before`` set, only predicates
        *ahead of it* in the node's FIFO list are checked (the fairness
        rule of section 10.3).
        """
        wanted = set(kinds)
        with self._mutex:
            node_list = list(self._by_node.get(pid, ()))
        comparisons = 0
        found: list[PredicateLock] = []
        for plock in node_list:
            if before is not None and plock is before:
                break
            if plock.kind not in wanted or plock.owner == exclude_owner:
                continue
            comparisons += 1
            if self.consistent(plock.pred, probe):
                found.append(plock)
        self.stats.note_check(comparisons, len(found))
        return found

    def predicates_on(self, pid: PageId) -> list[PredicateLock]:
        """FIFO-ordered predicates currently attached to the node."""
        with self._mutex:
            return list(self._by_node.get(pid, ()))

    def predicates_of(self, xid: int) -> list[PredicateLock]:
        """All predicates registered by the transaction."""
        with self._mutex:
            return list(self._by_txn.get(xid, ()))

    def total_predicates(self) -> int:
        """Total live predicates across all transactions."""
        with self._mutex:
            return sum(len(v) for v in self._by_txn.values())

    # ------------------------------------------------------------------
    # structural maintenance (split / BP expansion)
    # ------------------------------------------------------------------
    def replicate_for_split(
        self, orig_pid: PageId, new_pid: PageId, new_bp: object
    ) -> int:
        """Node split: copy to the new sibling every predicate attached
        to the original node that is consistent with the sibling's BP
        (section 4.3, first replication case)."""
        with self._mutex:
            node_list = list(self._by_node.get(orig_pid, ()))
        copied = 0
        for plock in node_list:
            if new_bp is None or self.consistent(plock.pred, new_bp):
                self.attach(plock, new_pid)
                copied += 1
        return copied

    def percolate(
        self,
        parent_pid: PageId,
        child_pid: PageId,
        child_new_bp: object,
        child_old_bp: object,
    ) -> int:
        """BP expansion: push down to the child every parent-attached
        predicate that is consistent with the child's *new* BP but was
        not with its old one (section 4.3, second replication case;
        Figure 4's updateBP)."""
        with self._mutex:
            parent_list = list(self._by_node.get(parent_pid, ()))
        copied = 0
        for plock in parent_list:
            if not self.consistent(plock.pred, child_new_bp):
                continue
            if child_old_bp is not None and self.consistent(
                plock.pred, child_old_bp
            ):
                continue
            self.attach(plock, child_pid)
            copied += 1
        return copied

    # ------------------------------------------------------------------
    # blocking
    # ------------------------------------------------------------------
    @staticmethod
    def wait_for_owners(
        locks: LockManager, waiter_xid: int, plocks: Iterable[PredicateLock]
    ) -> None:
        """Block until every conflicting predicate's owner terminates.

        Implemented as instant-duration S locks on the owners' txn lock
        names; deadlocks between mutually-blocking operations (the
        unique-index race of section 8) surface through the lock
        manager's detector.
        """
        for owner in sorted({p.owner for p in plocks}):
            name = txn_lock_name(owner)
            locks.acquire(waiter_xid, name, LockMode.S)
            locks.release(waiter_xid, name)
