"""Storage substrate: pages, the simulated disk, and the buffer pool."""

from repro.storage.buffer import BufferPool, Frame
from repro.storage.disk import IOStats, PageStore
from repro.storage.page import (
    NO_PAGE,
    InternalEntry,
    LeafEntry,
    Page,
    PageId,
    PageKind,
)

__all__ = [
    "NO_PAGE",
    "BufferPool",
    "Frame",
    "IOStats",
    "InternalEntry",
    "LeafEntry",
    "Page",
    "PageId",
    "PageKind",
    "PageStore",
]
