"""The page model shared by the GiST and its baselines.

Every tree node lives in a page.  A page carries the concurrency-protocol
fields the paper adds to each node (section 3): the **node sequence number
(NSN)** and the **rightlink**, plus the **page LSN** required by the WAL
protocol (section 9/10.1).

Entries come in two shapes:

* :class:`LeafEntry` — a ``(key, RID)`` pair plus the *logical deletion*
  marker of section 7 (``deleted`` flag and the deleting transaction id,
  needed by garbage collection to test whether the deleter committed).
* :class:`InternalEntry` — a ``(bounding predicate, child page id)`` pair.
  Note there is deliberately **no per-entry sequence number**: the paper's
  NSN design improves on the R-link tree precisely by keeping internal
  entries two fields wide (section 3).

Capacity is counted in entry slots rather than bytes; ``capacity`` is the
page's fanout and is configurable per tree, which is what the paper's
analysis actually depends on (splits happen when a node overflows its
fanout).
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.errors import PageOverflowError

#: Page id type alias (page ids are small ints handed out by the store).
PageId = int

#: Sentinel page id meaning "no page" (e.g. no rightlink).
NO_PAGE: PageId = -1

#: Types whose values never need copying.  Keys and predicates of these
#: types are shared between a page and its snapshots instead of being
#: ``copy.deepcopy``-ed on every flush/eviction — the dominant cost of a
#: page snapshot for scalar trees.  Extensions whose key/predicate type
#: is immutable (e.g. a frozen dataclass) opt in via
#: :func:`register_immutable_type`.
_IMMUTABLE_TYPES: set[type] = {
    int,
    float,
    str,
    bytes,
    bool,
    complex,
    type(None),
}


def register_immutable_type(tp: type) -> None:
    """Declare ``tp`` immutable so copies can share its instances.

    Only register types whose instances can never be mutated in place
    (scalars, frozen dataclasses of scalars); a shared mutable value
    would let an in-memory page edit leak into an already-taken disk
    snapshot.
    """
    _IMMUTABLE_TYPES.add(tp)


def _is_immutable(value: object) -> bool:
    tp = type(value)
    if tp in _IMMUTABLE_TYPES:
        return True
    if tp is tuple:
        return all(_is_immutable(item) for item in value)
    return False


def _copy_value(value: object) -> object:
    """A safe independent copy: shared if immutable, deep otherwise."""
    if _is_immutable(value):
        return value
    return copy.deepcopy(value)


class PageKind(Enum):
    """What a page currently holds."""

    LEAF = "leaf"
    INTERNAL = "internal"
    FREE = "free"


@dataclass
class LeafEntry:
    """A ``(key, RID)`` pair stored on a leaf.

    ``deleted`` / ``delete_xid`` implement logical deletion (section 7):
    a delete only marks the entry; it stays physically present so that
    repeatable-read scans block on the deleter's RID lock, and is removed
    later by garbage collection once the deleter has committed.
    """

    key: object
    rid: object
    deleted: bool = False
    delete_xid: int | None = None

    def copy(self) -> "LeafEntry":
        """An independent copy."""
        return LeafEntry(
            _copy_value(self.key), self.rid, self.deleted, self.delete_xid
        )

    def as_tuple(self) -> tuple[object, object]:
        """The entry as a plain ``(key, rid)`` tuple."""
        return (self.key, self.rid)


@dataclass
class InternalEntry:
    """A ``(bounding predicate, child pointer)`` pair on an internal node."""

    pred: object
    child: PageId

    def copy(self) -> "InternalEntry":
        """An independent copy."""
        return InternalEntry(_copy_value(self.pred), self.child)


@dataclass
class Page:
    """An in-memory page image.

    Attributes
    ----------
    pid:
        Page id.
    kind:
        Leaf, internal, or free.
    level:
        0 for leaves, parents are 1, and so on (the root has the highest
        level).  Levels make tree-invariant checking cheap and unambiguous.
    nsn:
        Node sequence number (section 3).  Compared against the global
        counter value a traversal memorised when it read the parent entry;
        ``nsn`` greater than the memorised value means "this node has
        split since you read my parent entry — follow my rightlink".
    rightlink:
        Page id of the right sibling split off this node, or ``NO_PAGE``.
    page_lsn:
        LSN of the last log record applied to this page (WAL protocol).
    capacity:
        Maximum number of entries before the page must split.
    bp:
        The node's own copy of its bounding predicate.  The authoritative
        copy lives in the parent entry, but Table 1's Parent-Entry-Update
        record updates "the BP in the child and the corresponding slot in
        the parent", so the child carries a copy too (it is what
        ``updateBP`` compares against).  ``None`` on the root means "the
        whole key space".
    entries:
        Leaf entries or internal entries depending on ``kind``.
    """

    pid: PageId
    kind: PageKind
    level: int = 0
    nsn: int = 0
    rightlink: PageId = NO_PAGE
    page_lsn: int = 0
    capacity: int = 64
    bp: object | None = None
    entries: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True for leaf pages."""
        return self.kind is PageKind.LEAF

    @property
    def is_internal(self) -> bool:
        """True for internal pages."""
        return self.kind is PageKind.INTERNAL

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        """True when no entry slot is free."""
        return len(self.entries) >= self.capacity

    @property
    def free_slots(self) -> int:
        """Number of free entry slots."""
        return self.capacity - len(self.entries)

    def live_entries(self) -> Iterator[LeafEntry]:
        """Leaf entries not marked logically deleted."""
        for entry in self.entries:
            if not entry.deleted:
                yield entry

    # ------------------------------------------------------------------
    # mutation helpers (callers hold the X latch and have logged)
    # ------------------------------------------------------------------
    def add_entry(self, entry: LeafEntry | InternalEntry) -> None:
        """Append an entry (raises :class:`PageOverflowError` when full)."""
        if len(self.entries) >= self.capacity:
            raise PageOverflowError(
                f"page {self.pid} full ({self.capacity} entries)"
            )
        self.entries.append(entry)

    def find_leaf_entry(self, key: object, rid: object) -> LeafEntry | None:
        """Locate the leaf entry with exactly this ``(key, rid)`` pair."""
        for entry in self.entries:
            if entry.rid == rid and entry.key == key:
                return entry
        return None

    def find_child_entry(self, child: PageId) -> InternalEntry | None:
        """Locate the internal entry pointing at ``child``."""
        for entry in self.entries:
            if entry.child == child:
                return entry
        return None

    def remove_child_entry(self, child: PageId) -> InternalEntry | None:
        """Remove and return the internal entry pointing at ``child``."""
        for i, entry in enumerate(self.entries):
            if entry.child == child:
                return self.entries.pop(i)
        return None

    def remove_leaf_entries(self, rids: set) -> list[LeafEntry]:
        """Physically remove the leaf entries whose RID is in ``rids``."""
        removed = [e for e in self.entries if e.rid in rids]
        self.entries = [e for e in self.entries if e.rid not in rids]
        return removed

    def remove_leaf_pairs(self, pairs: set) -> list[LeafEntry]:
        """Physically remove entries whose ``(key, rid)`` is in ``pairs``.

        Garbage collection keys on the full pair: a record re-inserted
        under a new key may coexist with its old tombstone on one page,
        and only the tombstone must go.
        """
        removed = [
            e for e in self.entries if (e.key, e.rid) in pairs
        ]
        self.entries = [
            e for e in self.entries if (e.key, e.rid) not in pairs
        ]
        return removed

    # ------------------------------------------------------------------
    # snapshots (used by the "disk")
    # ------------------------------------------------------------------
    def snapshot(self) -> "Page":
        """A deep, independent copy of this page image."""
        clone = Page(
            pid=self.pid,
            kind=self.kind,
            level=self.level,
            nsn=self.nsn,
            rightlink=self.rightlink,
            page_lsn=self.page_lsn,
            capacity=self.capacity,
            bp=_copy_value(self.bp),
        )
        clone.entries = [entry.copy() for entry in self.entries]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page(pid={self.pid}, {self.kind.value}, level={self.level}, "
            f"nsn={self.nsn}, right={self.rightlink}, lsn={self.page_lsn}, "
            f"n={len(self.entries)}/{self.capacity})"
        )


# ---------------------------------------------------------------------------
# checksums (torn-write detection)
# ---------------------------------------------------------------------------


def page_fingerprint(page: Page) -> bytes:
    """A canonical byte encoding of a page image's full content.

    Covers every header field *and* every entry field, so any
    half-applied write (stale entries under a new header, or vice
    versa) changes the fingerprint.  Keys, RIDs and predicates are
    folded in via ``repr`` — stable for the scalar and dataclass types
    extensions use, and good enough for a simulation checksum.
    """
    parts = [
        f"pid={page.pid}",
        f"kind={page.kind.value}",
        f"level={page.level}",
        f"nsn={page.nsn}",
        f"rightlink={page.rightlink}",
        f"page_lsn={page.page_lsn}",
        f"capacity={page.capacity}",
        f"bp={page.bp!r}",
    ]
    for entry in page.entries:
        if isinstance(entry, LeafEntry):
            parts.append(
                f"L:{entry.key!r}:{entry.rid!r}:{entry.deleted}"
                f":{entry.delete_xid}"
            )
        else:
            parts.append(f"I:{entry.pred!r}:{entry.child}")
    return "|".join(parts).encode("utf-8", "backslashreplace")


def page_checksum(page: Page) -> int:
    """CRC32 of the page fingerprint (the persisted page checksum)."""
    return zlib.crc32(page_fingerprint(page))
