"""Buffer pool with pinning, per-frame latches and WAL enforcement.

The buffer pool is the substrate that makes the paper's latch protocol
meaningful: tree nodes are latched *through* their buffer frames, pages
are fetched from the simulated disk on miss (paying I/O latency **without
any tree latch held**, per the protocol), and dirty pages are written back
under the write-ahead-logging rule — the log is flushed up to the page's
LSN before the page image reaches disk.

The frame table is hash-partitioned into ``shards`` independent shards,
each with its own mutex, frame map, load/writeback coalescing events and
clock hand, so concurrent pins of *different* pages never contend on a
shared lock.  A pin of a resident page touches exactly one lock: its own
shard's (``tests/storage/test_buffer_shards.py`` asserts this via the
per-shard acquisition counters).  Capacity stays a *global* budget,
tracked by a dedicated counter lock that the resident-hit path never
takes; eviction sweeps shards round-robin starting from the shard that
needs the slot.  Victim selection within a shard is an amortized
second-chance clock rather than a full scan, so eviction cost no longer
grows with pool capacity.

Crash simulation (:meth:`BufferPool.crash`) simply discards every frame:
whatever the WAL rule forced to disk is all that survives, which is
exactly the state restart recovery (section 9) must cope with.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns, sleep
from typing import Callable, Iterator

from repro.errors import BufferPoolError, TornPageError, TransientIOError
from repro.obs.metrics import LatchTimer, MetricsRegistry
from repro.storage.disk import PageStore
from repro.storage.page import Page, PageId, PageKind
from repro.sync.latch import LatchMode, SXLatch


class Frame:
    """A buffer frame: one cached page plus its pin count and latch."""

    __slots__ = ("page", "pin_count", "dirty", "rec_lsn", "latch", "ref")

    def __init__(
        self,
        page: Page,
        latch_timer: object = None,
        witness: object = None,
        tracker: object = None,
    ) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False
        #: LSN of the record that first dirtied this page since its last
        #: flush — the recLSN that goes into the dirty page table.
        self.rec_lsn: int | None = None
        self.latch = SXLatch(
            name=page.pid, timer=latch_timer, witness=witness,
            tracker=tracker,
        )
        #: second-chance reference bit, owned by the frame's shard.
        self.ref = False

    def mark_dirty(self, lsn: int) -> None:
        """Record that a log record with ``lsn`` modified this page."""
        if not self.dirty:
            self.dirty = True
            self.rec_lsn = lsn
        self.page.page_lsn = max(self.page.page_lsn, lsn)


class _Shard:
    """One partition of the frame table.

    Every field is protected by ``lock`` — including the plain-int
    counters, whose mutation-only-under-the-shard-lock invariant is what
    keeps them exact without atomics (asserted by
    tests/storage/test_buffer.py::test_counters_updated_under_pool_lock
    and the shard-sum test in tests/storage/test_buffer_shards.py).
    ``lock_acquisitions`` counts every acquisition of ``lock``; the
    hot-path benchmark uses it to prove a resident pin touches only its
    own shard.
    """

    __slots__ = (
        "index",
        "lock",
        "frames",
        "loading",
        "writeback",
        "ring",
        "hand",
        "hits",
        "misses",
        "evictions",
        "lock_acquisitions",
    )

    def __init__(self, index: int = 0) -> None:
        #: stable shard number, used as the lockdep resource key
        self.index = index
        self.lock = threading.Lock()
        self.frames: dict[PageId, Frame] = {}
        self.loading: dict[PageId, threading.Event] = {}
        self.writeback: dict[PageId, threading.Event] = {}
        #: clock ring of page ids, swept by ``hand``.  Slots go stale
        #: when their page is evicted or dropped and are reaped lazily.
        self.ring: list[PageId] = []
        self.hand = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lock_acquisitions = 0

    # -- all methods below are called with ``self.lock`` held ----------
    def insert(self, frame: Frame) -> None:
        pid = frame.page.pid
        self.frames[pid] = frame
        frame.ref = True
        self.ring.append(pid)
        if len(self.ring) > 2 * len(self.frames) + 8:
            self._compact_ring()

    def _compact_ring(self) -> None:
        """Drop stale/duplicate ring slots, preserving clock order."""
        seen: set[PageId] = set()
        fresh: list[PageId] = []
        hand = min(self.hand, len(self.ring))
        for pid in self.ring[hand:] + self.ring[:hand]:
            if pid in self.frames and pid not in seen:
                seen.add(pid)
                fresh.append(pid)
        self.ring = fresh
        self.hand = 0

    def pick_victim(self) -> tuple[PageId, Frame] | None:
        """Advance the second-chance clock to an evictable frame.

        Amortized O(1): each sweep step either reaps a stale slot or
        spends a frame's reference bit; at most two full passes run
        before giving up (everything pinned or latched).
        """
        ring = self.ring
        examined = 0
        limit = 2 * len(ring)
        while ring and examined <= limit:
            if self.hand >= len(ring):
                self.hand = 0
            pid = ring[self.hand]
            frame = self.frames.get(pid)
            if frame is None:
                ring.pop(self.hand)  # stale: evicted or dropped earlier
                continue
            examined += 1
            if frame.pin_count == 0 and not frame.latch.holders():
                if frame.ref:
                    frame.ref = False
                    self.hand += 1
                else:
                    ring.pop(self.hand)
                    return pid, frame
            else:
                self.hand += 1
        return None


class BufferPool:
    """A fixed-capacity page cache over a :class:`PageStore`.

    Parameters
    ----------
    store:
        The backing page store.
    capacity:
        Maximum number of resident frames, pool-wide (shards share one
        budget).  Must comfortably exceed the largest working set a
        single operation pins at once — a recursive split cascade
        latches roughly two frames per tree level — so a few dozen
        frames is the practical floor for deep trees (the pool raises
        :class:`BufferPoolError` rather than deadlocking when it cannot
        make room).
    wal_flush:
        Callable invoked as ``wal_flush(lsn)`` before any dirty page with
        ``page_lsn == lsn`` is written to disk.  Wired to
        ``LogManager.flush`` by the database assembly; defaults to a no-op
        so the pool is usable stand-alone.
    metrics:
        Metrics registry to report into (``buffer.*`` counters and
        gauges, ``latch.*`` timing shared by every frame latch).  A
        private registry is created when omitted, so the pool is fully
        instrumented stand-alone too.
    shards:
        Number of hash partitions of the frame table.  1 (the default)
        degenerates to a single-mutex pool; the database assembly
        passes its ``pool_shards`` knob here.
    io_retries:
        How many times a page read that failed with
        :class:`~repro.errors.TransientIOError` is retried before the
        error surfaces.
    io_retry_backoff:
        Base delay of the bounded exponential backoff between read
        retries, in seconds (doubles per attempt, capped at
        :data:`MAX_RETRY_BACKOFF`).  ``0.0`` retries immediately —
        what deterministic tests and chaos trials use.
    """

    #: ceiling on any single retry backoff sleep (seconds)
    MAX_RETRY_BACKOFF = 0.05

    def __init__(
        self,
        store: PageStore,
        capacity: int = 1024,
        wal_flush: Callable[[int], None] | None = None,
        metrics: MetricsRegistry | None = None,
        shards: int = 1,
        io_retries: int = 4,
        io_retry_backoff: float = 0.001,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        if shards < 1:
            raise BufferPoolError("buffer pool shard count must be >= 1")
        self.store = store
        self.capacity = capacity
        self.wal_flush = wal_flush or (lambda lsn: None)
        self.io_retries = io_retries
        self.io_retry_backoff = io_retry_backoff
        #: callable rebuilding a page image from the WAL (wired by the
        #: database assembly); enables torn-page self-healing on fix
        self.page_rebuilder: Callable[[PageId], Page | None] | None = None
        self._shards = [_Shard(i) for i in range(shards)]
        self._n_shards = shards
        # Global capacity budget.  ``_cap_lock`` is never held together
        # with a shard lock, and the resident-hit pin path never touches
        # it — only slot reservation (miss/new/adopt) and eviction do.
        self._cap_lock = threading.Lock()
        self._n_resident = 0
        self.metrics = metrics or MetricsRegistry()
        self._h_read_ns = self.metrics.histogram("buffer.io_read_ns")
        self._h_write_ns = self.metrics.histogram("buffer.io_write_ns")
        # Fault-handling counters, created once here: with no faults in
        # play none of them is ever incremented, and the resident-pin
        # hot path does not touch them at all.
        self._c_io_retries = self.metrics.counter("storage.io_retries")
        self._c_torn_detected = self.metrics.counter(
            "storage.torn_pages_detected"
        )
        self._c_torn_healed = self.metrics.counter(
            "storage.torn_pages_healed"
        )
        self._c_write_faults = self.metrics.counter("storage.write_faults")
        # Per-thread pin ledger, maintained only while a fault plan is
        # installed: when a typed storage fault unwinds a tree operation
        # mid-descent, :meth:`release_thread_fixes` uses it to drop the
        # pins (and latches) the aborted operation leaked.  With faults
        # disabled the ledger is never touched — the resident-pin hot
        # path pays one predictable branch and nothing else.
        self._track_fixes = store.fault_plan is not None
        self._fix_local = threading.local()
        # Lockdep witness (Database(protocol_checks=True)).  ``None`` —
        # the default — keeps pin/unpin and the shard mutexes entirely
        # free of witness calls, same gating idea as ``_track_fixes``;
        # bench_hotpath counter-asserts the off state.
        self._witness = None
        # Span tracker (Database(op_tracing=True)): pins and I/O are
        # attributed to the calling thread's operation span.  Same
        # gating pattern — ``None`` keeps the hot paths span-free.
        self._tracker = None
        self._latch_timer = (
            LatchTimer(self.metrics) if self.metrics.enabled else None
        )
        # Aggregate gauges keep their pre-sharding names; per-shard
        # breakdowns live under ``buffer.shard.*``.  All are evaluated
        # only at snapshot time — a pin costs zero registry calls.
        self.metrics.gauge("buffer.hits", lambda: self.hits)
        self.metrics.gauge("buffer.misses", lambda: self.misses)
        self.metrics.gauge("buffer.evictions", lambda: self.evictions)
        self.metrics.gauge(
            "buffer.resident",
            lambda: sum(len(s.frames) for s in self._shards),
        )
        self.metrics.gauge(
            "buffer.dirty", lambda: len(self.dirty_page_table())
        )
        self.metrics.gauge("buffer.hit_rate", self._hit_rate)
        self.metrics.gauge("buffer.shard.count", lambda: self._n_shards)
        for idx, shard in enumerate(self._shards):
            self.metrics.gauge(
                f"buffer.shard.{idx}.hits", lambda s=shard: s.hits
            )
            self.metrics.gauge(
                f"buffer.shard.{idx}.misses", lambda s=shard: s.misses
            )
            self.metrics.gauge(
                f"buffer.shard.{idx}.evictions", lambda s=shard: s.evictions
            )
            self.metrics.gauge(
                f"buffer.shard.{idx}.resident", lambda s=shard: len(s.frames)
            )
            self.metrics.gauge(
                f"buffer.shard.{idx}.lock_acquisitions",
                lambda s=shard: s.lock_acquisitions,
            )

    def attach_witness(self, witness) -> None:
        """Install (or clear, with ``None``) a lockdep witness.

        Future frames inherit it through their latches; already-resident
        frames are swept so restarts with ``protocol_checks`` toggled
        behave uniformly.
        """
        self._witness = witness
        for shard in self._shards:
            with self._locked(shard):
                for frame in shard.frames.values():
                    frame.latch.witness = witness

    def attach_span_tracker(self, tracker) -> None:
        """Install (or clear, with ``None``) a span tracker.

        Future frames inherit it through their latches; already-resident
        frames are swept so restarts with ``op_tracing`` toggled behave
        uniformly (mirrors :meth:`attach_witness`).
        """
        self._tracker = tracker
        for shard in self._shards:
            with self._locked(shard):
                for frame in shard.frames.values():
                    frame.latch.tracker = tracker

    # ------------------------------------------------------------------
    # sharding helpers
    # ------------------------------------------------------------------
    def shard_of(self, pid: PageId) -> int:
        """Index of the shard responsible for ``pid``."""
        return pid % self._n_shards

    def _shard(self, pid: PageId) -> _Shard:
        return self._shards[pid % self._n_shards]

    @contextmanager
    def _locked(self, shard: _Shard) -> Iterator[None]:
        """Acquire a shard's mutex, counting the acquisition."""
        with shard.lock:
            shard.lock_acquisitions += 1
            witness = self._witness
            if witness is None:
                yield
            else:
                witness.note_acquired("shard", shard.index)
                try:
                    yield
                finally:
                    witness.note_released("shard", shard.index)

    def shard_metrics(self) -> list[dict[str, int]]:
        """Per-shard counter snapshot (tests and the hotpath bench)."""
        out = []
        for shard in self._shards:
            with self._locked(shard):
                out.append(
                    {
                        "hits": shard.hits,
                        "misses": shard.misses,
                        "evictions": shard.evictions,
                        "resident": len(shard.frames),
                        "lock_acquisitions": shard.lock_acquisitions,
                    }
                )
        return out

    # ------------------------------------------------------------------
    # backward-compatible counter views
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Pin requests satisfied from a resident frame (all shards)."""
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        """Pin requests that had to read the page from disk (all shards)."""
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        """Frames evicted to make room (all shards)."""
        return sum(s.evictions for s in self._shards)

    def _hit_rate(self) -> float:
        hits, misses = self.hits, self.misses
        total = hits + misses
        return round(hits / total, 4) if total else 0.0

    # ------------------------------------------------------------------
    # capacity budget
    # ------------------------------------------------------------------
    def _reserve_slot(self, home: int) -> None:
        """Claim one resident-frame slot, evicting if the pool is full.

        Eviction sweeps shards round-robin starting at ``home`` so the
        shard that needs the slot preferentially recycles its own
        frames.  Raises :class:`BufferPoolError` when a full sweep finds
        every frame pinned or latched.
        """
        while True:
            with self._cap_lock:
                if self._n_resident < self.capacity:
                    self._n_resident += 1
                    return
            if not self._evict_one(home):
                raise BufferPoolError(
                    "buffer pool full and every frame is pinned"
                )

    def _release_slot(self) -> None:
        with self._cap_lock:
            self._n_resident -= 1

    def _evict_one(self, home: int) -> bool:
        """Evict one frame from the first shard that has a victim."""
        for step in range(self._n_shards):
            shard = self._shards[(home + step) % self._n_shards]
            event: threading.Event | None = None
            snapshot: Page | None = None
            with self._locked(shard):
                victim = shard.pick_victim()
                if victim is None:
                    continue
                pid, frame = victim
                del shard.frames[pid]
                shard.evictions += 1
                if frame.dirty:
                    # Publish the writeback before releasing the shard
                    # lock so a concurrent pin of this pid waits for the
                    # disk image instead of reading a stale one.
                    event = threading.Event()
                    shard.writeback[pid] = event
                    snapshot = frame.page.snapshot()
            if event is not None and snapshot is not None:
                write_ok = False
                try:
                    self.wal_flush(snapshot.page_lsn)
                    t0 = perf_counter_ns()
                    self.store.write(snapshot)
                    dur = perf_counter_ns() - t0
                    self._h_write_ns.record(dur)
                    if self._tracker is not None:
                        self._tracker.add_io(dur)
                    write_ok = True
                finally:
                    with self._locked(shard):
                        shard.writeback.pop(pid, None)
                        if not write_ok:
                            # The writeback failed: reinstall the (still
                            # dirty) frame so the only copy of the page
                            # is never lost; the typed error propagates.
                            self._c_write_faults.inc()
                            shard.evictions -= 1
                            shard.insert(frame)
                    event.set()
            self._release_slot()
            return True
        return False

    # ------------------------------------------------------------------
    # pin / unpin
    # ------------------------------------------------------------------
    def pin(self, pid: PageId) -> Frame:
        """Pin ``pid``, fetching it from disk on a miss.

        The disk read (the slow part) happens with **no pool lock and no
        latch held**; concurrent pinners of the same page coalesce onto a
        single read.  A hit on a resident page acquires exactly one
        lock: the page's own shard mutex.
        """
        frame = self._pin(pid)
        if self._track_fixes:
            self._ledger().append(frame)
        if self._witness is not None:
            self._witness.note_pinned(pid)
        if self._tracker is not None:
            self._tracker.note_fix()
        return frame

    def _ledger(self) -> list:
        """This thread's list of pinned frames (fault-plan runs only)."""
        try:
            return self._fix_local.frames
        except AttributeError:
            frames: list[Frame] = []
            self._fix_local.frames = frames
            return frames

    def release_thread_fixes(self) -> int:
        """Drop every pin and latch this thread still holds.

        The cleanup net for injected storage faults: a typed fault
        raised from a page fix unwinds the tree operation mid-descent,
        past frames it still has pinned and latched.  Left in place,
        those holdings would self-deadlock the thread's next operation
        (latch re-acquisition) and make frames unevictable.  Tree entry
        points call this when a :class:`~repro.errors.StorageFaultError`
        escapes; it is a no-op unless a fault plan is installed.

        Returns the number of pins/latches released.
        """
        if not self._track_fixes:
            return 0
        released = 0
        ledger = getattr(self._fix_local, "frames", None)
        while ledger:
            frame = ledger.pop()
            pid = frame.page.pid
            try:
                if frame.latch.held_by_me():
                    frame.latch.release()
                shard = self._shard(pid)
                with self._locked(shard):
                    if (
                        shard.frames.get(pid) is frame
                        and frame.pin_count > 0
                    ):
                        frame.pin_count -= 1
                        if self._witness is not None:
                            self._witness.note_unpinned(pid)
                released += 1
            except Exception:  # pragma: no cover - best-effort cleanup
                # the fault-unwind sweep must keep releasing the
                # remaining fixes even if one release fails
                continue  # lint: allow(swallowed-fault): best-effort sweep
        # Frames installed via adopt() are latched directly without a
        # tracked pin (split construction); sweep any latch left held.
        for shard in self._shards:
            with self._locked(shard):
                frames = list(shard.frames.values())
            for frame in frames:
                try:
                    while frame.latch.held_by_me():
                        frame.latch.release()
                        released += 1
                except Exception:  # pragma: no cover - best-effort
                    break  # lint: allow(swallowed-fault): best-effort sweep
        return released

    def _pin(self, pid: PageId) -> Frame:
        shard = self._shard(pid)
        while True:
            wait_for: threading.Event | None = None
            with self._locked(shard):
                frame = shard.frames.get(pid)
                if frame is not None:
                    frame.pin_count += 1
                    frame.ref = True
                    shard.hits += 1
                    return frame
                if pid in shard.writeback:
                    wait_for = shard.writeback[pid]
                elif pid in shard.loading:
                    wait_for = shard.loading[pid]
                else:
                    event = threading.Event()
                    shard.loading[pid] = event
                    shard.misses += 1
            if wait_for is not None:
                wait_for.wait()
                continue
            # We own the load for this pid.
            try:
                page = self._read_page(pid)
                frame = Frame(
                    page, self._latch_timer, self._witness, self._tracker
                )
                frame.pin_count = 1
                self._reserve_slot(self.shard_of(pid))
                with self._locked(shard):
                    shard.insert(frame)
                return frame
            finally:
                with self._locked(shard):
                    event = shard.loading.pop(pid, None)
                if event is not None:
                    event.set()

    def _read_page(self, pid: PageId) -> Page:
        """``store.read`` with transient-fault retry and torn-page heal.

        Transient read errors are retried up to ``io_retries`` times
        with bounded exponential backoff.  A checksum mismatch (torn
        page) is healed when the database wired a ``page_rebuilder``:
        the image is reconstructed by WAL replay and re-persisted, so
        the next reader finds a clean page.  Either error surfaces
        typed when it cannot be absorbed — never silent corruption.
        """
        attempt = 0
        while True:
            try:
                t0 = perf_counter_ns()
                page = self.store.read(pid)
                dur = perf_counter_ns() - t0
                self._h_read_ns.record(dur)
                if self._tracker is not None:
                    self._tracker.add_io(dur)
                return page
            except TransientIOError:
                attempt += 1
                if attempt > self.io_retries:
                    raise
                self._c_io_retries.inc()
                delay = min(
                    self.io_retry_backoff * (2 ** (attempt - 1)),
                    self.MAX_RETRY_BACKOFF,
                )
                if delay > 0.0:
                    sleep(delay)
            except TornPageError:
                self._c_torn_detected.inc()
                if self.page_rebuilder is None:
                    raise
                page = self.page_rebuilder(pid)
                if page is None:
                    raise
                self.store.write(page)  # persist the healed image
                self._c_torn_healed.inc()
                return page

    def unpin(self, pid: PageId) -> None:
        """Drop one pin on ``pid``."""
        shard = self._shard(pid)
        with self._locked(shard):
            frame = shard.frames.get(pid)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError(f"unpin of page {pid} that is not pinned")
            frame.pin_count -= 1
        if self._witness is not None:
            self._witness.note_unpinned(pid)
        if self._track_fixes:
            ledger = getattr(self._fix_local, "frames", None)
            if ledger is not None:
                for i in range(len(ledger) - 1, -1, -1):
                    if ledger[i] is frame:
                        del ledger[i]
                        break

    def new_frame(self, kind: PageKind, level: int = 0) -> Frame:
        """Allocate a brand-new page and return its frame, pinned once."""
        page = self.store.new_page(kind, level)
        frame = Frame(
            page, self._latch_timer, self._witness, self._tracker
        )
        frame.pin_count = 1
        shard = self._shard(page.pid)
        self._reserve_slot(self.shard_of(page.pid))
        with self._locked(shard):
            shard.insert(frame)
        if self._track_fixes:
            self._ledger().append(frame)
        if self._witness is not None:
            self._witness.note_pinned(page.pid)
        if self._tracker is not None:
            self._tracker.note_fix()
        return frame

    def adopt(self, page: Page) -> Frame:
        """Install an externally built page image (recovery redo path)."""
        frame = Frame(
            page, self._latch_timer, self._witness, self._tracker
        )
        shard = self._shard(page.pid)
        with self._locked(shard):
            if page.pid in shard.frames:
                raise BufferPoolError(f"page {page.pid} already resident")
        self._reserve_slot(self.shard_of(page.pid))
        with self._locked(shard):
            if page.pid in shard.frames:
                self._release_slot()
                raise BufferPoolError(f"page {page.pid} already resident")
            shard.insert(frame)
        return frame

    # ------------------------------------------------------------------
    # fix/unfix: pin + latch as one operation
    # ------------------------------------------------------------------
    def fix(self, pid: PageId, mode: LatchMode) -> Frame:
        """Pin *and latch* the page.  Pair with :meth:`unfix`."""
        frame = self.pin(pid)
        try:
            frame.latch.acquire(mode)
        except BaseException:
            # e.g. a re-entrant acquire (LatchError): the pin taken
            # above must not leak when the latch is never granted
            self.unpin(pid)
            raise
        return frame

    def unfix(self, frame: Frame) -> None:
        """Release the latch and drop the pin taken by :meth:`fix`."""
        frame.latch.release()
        self.unpin(frame.page.pid)

    @contextmanager
    def fixed(self, pid: PageId, mode: LatchMode) -> Iterator[Frame]:
        """Context-manager form of :meth:`fix` / :meth:`unfix`."""
        frame = self.fix(pid, mode)
        try:
            yield frame
        finally:
            self.unfix(frame)

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush_page(self, pid: PageId) -> None:
        """Write one dirty page to disk under the WAL rule.

        If the disk write fails (injected permanent write fault), the
        frame's dirty state is restored before the typed error
        propagates: the in-memory image plus its WAL coverage is never
        lost, and a later flush — or restart redo onto repaired
        storage — retries the write.
        """
        shard = self._shard(pid)
        with self._locked(shard):
            frame = shard.frames.get(pid)
            if frame is None or not frame.dirty:
                return
            snapshot = frame.page.snapshot()
            rec_lsn = frame.rec_lsn
            frame.dirty = False
            frame.rec_lsn = None
        try:
            self.wal_flush(snapshot.page_lsn)
            t0 = perf_counter_ns()
            self.store.write(snapshot)
            dur = perf_counter_ns() - t0
            self._h_write_ns.record(dur)
            if self._tracker is not None:
                self._tracker.add_io(dur)
        except BaseException:
            self._c_write_faults.inc()
            with self._locked(shard):
                if shard.frames.get(pid) is frame:
                    frame.dirty = True
                    if frame.rec_lsn is None:
                        frame.rec_lsn = rec_lsn
                    elif rec_lsn is not None:
                        frame.rec_lsn = min(frame.rec_lsn, rec_lsn)
            raise

    def flush_all(self) -> None:
        """Flush every dirty page (clean shutdown / checkpoint end).

        Every page is attempted even when one write fails, so a single
        poisoned page cannot pin the rest of the dirty set in memory;
        the first error is re-raised after the sweep.
        """
        dirty: list[PageId] = []
        for shard in self._shards:
            with self._locked(shard):
                dirty.extend(
                    pid for pid, f in shard.frames.items() if f.dirty
                )
        first_error: BaseException | None = None
        for pid in dirty:
            try:
                self.flush_page(pid)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def dirty_page_table(self) -> dict[PageId, int]:
        """``{pid: recLSN}`` for every dirty page (checkpointing)."""
        table: dict[PageId, int] = {}
        for shard in self._shards:
            with self._locked(shard):
                for pid, frame in shard.frames.items():
                    if frame.dirty and frame.rec_lsn is not None:
                        table[pid] = frame.rec_lsn
        return table

    # ------------------------------------------------------------------
    # crash simulation
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all buffered state, as a power failure would.

        Nothing is flushed; only page images the WAL rule already forced
        to disk survive.  The caller must have quiesced worker threads.
        """
        for shard in self._shards:
            with self._locked(shard):
                shard.frames.clear()
                shard.ring.clear()
                shard.hand = 0
                for event in shard.loading.values():
                    event.set()
                shard.loading.clear()
                for event in shard.writeback.values():
                    event.set()
                shard.writeback.clear()
        with self._cap_lock:
            self._n_resident = 0

    def resident(self, pid: PageId) -> bool:
        """True if the page currently has a frame in the pool."""
        shard = self._shard(pid)
        with self._locked(shard):
            return pid in shard.frames

    def drop(self, pid: PageId) -> None:
        """Discard a (clean, unpinned) frame, e.g. after freeing a node."""
        shard = self._shard(pid)
        with self._locked(shard):
            frame = shard.frames.get(pid)
            if frame is None:
                return
            if frame.pin_count > 0:
                raise BufferPoolError(f"dropping pinned page {pid}")
            del shard.frames[pid]
        self._release_slot()
