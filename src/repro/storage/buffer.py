"""Buffer pool with pinning, per-frame latches and WAL enforcement.

The buffer pool is the substrate that makes the paper's latch protocol
meaningful: tree nodes are latched *through* their buffer frames, pages
are fetched from the simulated disk on miss (paying I/O latency **without
any tree latch held**, per the protocol), and dirty pages are written back
under the write-ahead-logging rule — the log is flushed up to the page's
LSN before the page image reaches disk.

Crash simulation (:meth:`BufferPool.crash`) simply discards every frame:
whatever the WAL rule forced to disk is all that survives, which is
exactly the state restart recovery (section 9) must cope with.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Callable, Iterator

from repro.errors import BufferPoolError
from repro.obs.metrics import LatchTimer, MetricsRegistry
from repro.storage.disk import PageStore
from repro.storage.page import Page, PageId, PageKind
from repro.sync.latch import LatchMode, SXLatch


class Frame:
    """A buffer frame: one cached page plus its pin count and latch."""

    __slots__ = ("page", "pin_count", "dirty", "rec_lsn", "latch", "_clock")

    def __init__(self, page: Page, latch_timer: object = None) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False
        #: LSN of the record that first dirtied this page since its last
        #: flush — the recLSN that goes into the dirty page table.
        self.rec_lsn: int | None = None
        self.latch = SXLatch(name=page.pid, timer=latch_timer)
        self._clock = 0

    def mark_dirty(self, lsn: int) -> None:
        """Record that a log record with ``lsn`` modified this page."""
        if not self.dirty:
            self.dirty = True
            self.rec_lsn = lsn
        self.page.page_lsn = max(self.page.page_lsn, lsn)


class BufferPool:
    """A fixed-capacity page cache over a :class:`PageStore`.

    Parameters
    ----------
    store:
        The backing page store.
    capacity:
        Maximum number of resident frames.  Must comfortably exceed the
        largest working set a single operation pins at once — a
        recursive split cascade latches roughly two frames per tree
        level — so a few dozen frames is the practical floor for deep
        trees (the pool raises :class:`BufferPoolError` rather than
        deadlocking when it cannot make room).
    wal_flush:
        Callable invoked as ``wal_flush(lsn)`` before any dirty page with
        ``page_lsn == lsn`` is written to disk.  Wired to
        ``LogManager.flush`` by the database assembly; defaults to a no-op
        so the pool is usable stand-alone.
    metrics:
        Metrics registry to report into (``buffer.*`` counters and
        gauges, ``latch.*`` timing shared by every frame latch).  A
        private registry is created when omitted, so the pool is fully
        instrumented stand-alone too.
    """

    def __init__(
        self,
        store: PageStore,
        capacity: int = 1024,
        wal_flush: Callable[[int], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self.store = store
        self.capacity = capacity
        self.wal_flush = wal_flush or (lambda lsn: None)
        self._mutex = threading.Lock()
        self._frames: dict[PageId, Frame] = {}
        self._loading: dict[PageId, threading.Event] = {}
        self._writeback: dict[PageId, threading.Event] = {}
        self._tick = 0
        self.metrics = metrics or MetricsRegistry()
        # Hit/miss/eviction counts are plain ints, only ever incremented
        # while ``self._mutex`` is held (the pool's long-standing
        # invariant, asserted by
        # tests/storage/test_buffer.py::test_counters_updated_under_pool_lock),
        # so a bare ``+=`` is exact.  The registry reads them through
        # ``buffer.*`` gauges evaluated only at snapshot time — a pin
        # costs zero registry calls on the hot path.
        self._n_hits = 0
        self._n_misses = 0
        self._n_evictions = 0
        self._h_read_ns = self.metrics.histogram("buffer.io_read_ns")
        self._h_write_ns = self.metrics.histogram("buffer.io_write_ns")
        self._latch_timer = (
            LatchTimer(self.metrics) if self.metrics.enabled else None
        )
        self.metrics.gauge("buffer.hits", lambda: self._n_hits)
        self.metrics.gauge("buffer.misses", lambda: self._n_misses)
        self.metrics.gauge("buffer.evictions", lambda: self._n_evictions)
        self.metrics.gauge("buffer.resident", lambda: len(self._frames))
        self.metrics.gauge(
            "buffer.dirty", lambda: len(self.dirty_page_table())
        )
        self.metrics.gauge("buffer.hit_rate", self._hit_rate)

    # ------------------------------------------------------------------
    # backward-compatible counter views
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Pin requests satisfied from a resident frame."""
        return self._n_hits

    @property
    def misses(self) -> int:
        """Pin requests that had to read the page from disk."""
        return self._n_misses

    @property
    def evictions(self) -> int:
        """Frames evicted to make room."""
        return self._n_evictions

    def _hit_rate(self) -> float:
        hits, misses = self._n_hits, self._n_misses
        total = hits + misses
        return round(hits / total, 4) if total else 0.0

    # ------------------------------------------------------------------
    # pin / unpin
    # ------------------------------------------------------------------
    def pin(self, pid: PageId) -> Frame:
        """Pin ``pid``, fetching it from disk on a miss.

        The disk read (the slow part) happens with **no pool mutex and no
        latch held**; concurrent pinners of the same page coalesce onto a
        single read.
        """
        while True:
            wait_for: threading.Event | None = None
            with self._mutex:
                frame = self._frames.get(pid)
                if frame is not None:
                    frame.pin_count += 1
                    self._tick += 1
                    frame._clock = self._tick
                    self._n_hits += 1
                    return frame
                if pid in self._writeback:
                    wait_for = self._writeback[pid]
                elif pid in self._loading:
                    wait_for = self._loading[pid]
                else:
                    event = threading.Event()
                    self._loading[pid] = event
                    self._n_misses += 1
            if wait_for is not None:
                wait_for.wait()
                continue
            # We own the load for this pid.
            try:
                t0 = perf_counter_ns()
                page = self.store.read(pid)
                self._h_read_ns.record(perf_counter_ns() - t0)
                frame = Frame(page, self._latch_timer)
                frame.pin_count = 1
                with self._mutex:
                    self._make_room_locked()
                    self._frames[pid] = frame
                    self._tick += 1
                    frame._clock = self._tick
                return frame
            finally:
                with self._mutex:
                    event = self._loading.pop(pid, None)
                if event is not None:
                    event.set()

    def unpin(self, pid: PageId) -> None:
        """Drop one pin on ``pid``."""
        with self._mutex:
            frame = self._frames.get(pid)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError(f"unpin of page {pid} that is not pinned")
            frame.pin_count -= 1

    def new_frame(self, kind: PageKind, level: int = 0) -> Frame:
        """Allocate a brand-new page and return its frame, pinned once."""
        page = self.store.new_page(kind, level)
        frame = Frame(page, self._latch_timer)
        frame.pin_count = 1
        with self._mutex:
            self._make_room_locked()
            self._frames[page.pid] = frame
            self._tick += 1
            frame._clock = self._tick
        return frame

    def adopt(self, page: Page) -> Frame:
        """Install an externally built page image (recovery redo path)."""
        frame = Frame(page, self._latch_timer)
        with self._mutex:
            if page.pid in self._frames:
                raise BufferPoolError(f"page {page.pid} already resident")
            self._make_room_locked()
            self._frames[page.pid] = frame
            self._tick += 1
            frame._clock = self._tick
        return frame

    # ------------------------------------------------------------------
    # fix/unfix: pin + latch as one operation
    # ------------------------------------------------------------------
    def fix(self, pid: PageId, mode: LatchMode) -> Frame:
        """Pin *and latch* the page.  Pair with :meth:`unfix`."""
        frame = self.pin(pid)
        frame.latch.acquire(mode)
        return frame

    def unfix(self, frame: Frame) -> None:
        """Release the latch and drop the pin taken by :meth:`fix`."""
        frame.latch.release()
        self.unpin(frame.page.pid)

    @contextmanager
    def fixed(self, pid: PageId, mode: LatchMode) -> Iterator[Frame]:
        """Context-manager form of :meth:`fix` / :meth:`unfix`."""
        frame = self.fix(pid, mode)
        try:
            yield frame
        finally:
            self.unfix(frame)

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush_page(self, pid: PageId) -> None:
        """Write one dirty page to disk under the WAL rule."""
        with self._mutex:
            frame = self._frames.get(pid)
            if frame is None or not frame.dirty:
                return
            snapshot = frame.page.snapshot()
            frame.dirty = False
            frame.rec_lsn = None
        self.wal_flush(snapshot.page_lsn)
        t0 = perf_counter_ns()
        self.store.write(snapshot)
        self._h_write_ns.record(perf_counter_ns() - t0)

    def flush_all(self) -> None:
        """Flush every dirty page (clean shutdown / checkpoint end)."""
        with self._mutex:
            dirty = [pid for pid, f in self._frames.items() if f.dirty]
        for pid in dirty:
            self.flush_page(pid)

    def dirty_page_table(self) -> dict[PageId, int]:
        """``{pid: recLSN}`` for every dirty page (checkpointing)."""
        with self._mutex:
            return {
                pid: frame.rec_lsn
                for pid, frame in self._frames.items()
                if frame.dirty and frame.rec_lsn is not None
            }

    # ------------------------------------------------------------------
    # crash simulation
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all buffered state, as a power failure would.

        Nothing is flushed; only page images the WAL rule already forced
        to disk survive.  The caller must have quiesced worker threads.
        """
        with self._mutex:
            self._frames.clear()
            for event in self._loading.values():
                event.set()
            self._loading.clear()
            for event in self._writeback.values():
                event.set()
            self._writeback.clear()

    def resident(self, pid: PageId) -> bool:
        """True if the page currently has a frame in the pool."""
        with self._mutex:
            return pid in self._frames

    def drop(self, pid: PageId) -> None:
        """Discard a (clean, unpinned) frame, e.g. after freeing a node."""
        with self._mutex:
            frame = self._frames.get(pid)
            if frame is None:
                return
            if frame.pin_count > 0:
                raise BufferPoolError(f"dropping pinned page {pid}")
            del self._frames[pid]

    # ------------------------------------------------------------------
    # eviction (callers hold self._mutex)
    # ------------------------------------------------------------------
    def _make_room_locked(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = self._pick_victim_locked()
            if victim is None:
                raise BufferPoolError(
                    "buffer pool full and every frame is pinned"
                )
            pid, frame = victim
            del self._frames[pid]
            if frame.dirty:
                event = threading.Event()
                self._writeback[pid] = event
                snapshot = frame.page.snapshot()
                self._mutex.release()
                try:
                    self.wal_flush(snapshot.page_lsn)
                    t0 = perf_counter_ns()
                    self.store.write(snapshot)
                    self._h_write_ns.record(perf_counter_ns() - t0)
                finally:
                    self._mutex.acquire()
                    self._writeback.pop(pid, None)
                    event.set()
            self._n_evictions += 1

    def _pick_victim_locked(self) -> tuple[PageId, Frame] | None:
        candidates = [
            (frame._clock, pid, frame)
            for pid, frame in self._frames.items()
            if frame.pin_count == 0 and not frame.latch.holders()
        ]
        if not candidates:
            return None
        _, pid, frame = min(candidates)
        return pid, frame
