"""The simulated disk: a persistent page store with I/O latency.

The paper's headline concurrency property is that **no node latches are
held during I/Os**.  To make that property measurable in pure Python we
model the disk as an in-memory dict of page snapshots with a configurable
per-operation latency (``io_delay``), implemented as a real sleep.  A
sleep releases the GIL, so protocols that hold latches across I/O (the
lock-coupling and subtree-locking baselines) genuinely serialize, while
the link protocol genuinely overlaps I/O with other threads' work.  This
is the substitution documented in DESIGN.md §2.

The store also provides the persistence boundary for crash simulation:
whatever was explicitly written here survives :meth:`BufferPool.crash`;
everything else is lost and must be reconstructed by restart recovery.

Two robustness layers ride on top (DESIGN.md §9):

* every persisted snapshot carries a **CRC32 checksum** over its full
  content (:func:`~repro.storage.page.page_checksum`), verified on
  read — a half-applied write surfaces as
  :class:`~repro.errors.TornPageError` instead of silent corruption;
* an optional :class:`~repro.faults.FaultPlan` is consulted on every
  read and write to inject transient read errors, permanent write
  errors and torn page writes on a seeded, deterministic schedule.
"""

from __future__ import annotations

import threading
import time

from repro.errors import (
    DiskWriteError,
    PageNotFoundError,
    TornPageError,
    TransientIOError,
)
from repro.faults import FaultKind, FaultPlan
from repro.obs.metrics import Counter
from repro.storage.page import (
    NO_PAGE,
    Page,
    PageId,
    PageKind,
    page_checksum,
)


class IOStats:
    """Counters for disk traffic.

    Built on the sharded :class:`repro.obs.metrics.Counter`, so an
    increment is a per-thread ``+=`` with no mutex — every simulated
    disk op used to pay a lock acquisition here, now none do.  Reads of
    the totals merge the shards (snapshot-time cost only).
    """

    def __init__(self) -> None:
        self._reads = Counter("io.reads")
        self._writes = Counter("io.writes")
        self._allocations = Counter("io.allocations")
        self._frees = Counter("io.frees")
        self._checksum_failures = Counter("io.checksum_failures")
        self._faults_injected = Counter("io.faults_injected")

    @property
    def reads(self) -> int:
        """Total page reads."""
        return self._reads.value

    @property
    def writes(self) -> int:
        """Total page writes."""
        return self._writes.value

    @property
    def allocations(self) -> int:
        """Total page allocations."""
        return self._allocations.value

    @property
    def frees(self) -> int:
        """Total page frees."""
        return self._frees.value

    @property
    def checksum_failures(self) -> int:
        """Reads that failed checksum verification (torn pages)."""
        return self._checksum_failures.value

    @property
    def faults_injected(self) -> int:
        """Faults the plan fired at this store."""
        return self._faults_injected.value

    def record_read(self) -> None:
        """Count one page read."""
        self._reads.inc()

    def record_write(self) -> None:
        """Count one page write."""
        self._writes.inc()

    def record_alloc(self) -> None:
        """Count one page allocation."""
        self._allocations.inc()

    def record_free(self) -> None:
        """Count one page free."""
        self._frees.inc()

    def record_checksum_failure(self) -> None:
        """Count one torn-page detection."""
        self._checksum_failures.inc()

    def record_fault(self) -> None:
        """Count one injected fault."""
        self._faults_injected.inc()

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "allocations": self.allocations,
            "frees": self.frees,
            "checksum_failures": self.checksum_failures,
            "faults_injected": self.faults_injected,
        }


class PageStore:
    """A crash-consistent page store ("the disk").

    Parameters
    ----------
    io_delay:
        Seconds of simulated latency per read/write.  ``0.0`` disables the
        sleep entirely (unit tests); benchmarks sweep this knob.
    page_capacity:
        Default entry capacity for newly allocated pages.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` consulted on every
        read/write.  ``None`` (the default) skips all fault checks.
    checksums:
        Verify a CRC32 over every persisted snapshot on read.  On by
        default; the check costs one fingerprint per *disk* read, never
        touches the resident-pin hot path, and is what turns a torn
        write into a typed, healable error.
    """

    def __init__(
        self,
        io_delay: float = 0.0,
        page_capacity: int = 64,
        fault_plan: FaultPlan | None = None,
        checksums: bool = True,
    ) -> None:
        self.io_delay = io_delay
        self.page_capacity = page_capacity
        self.fault_plan = fault_plan
        self.checksums = checksums
        self.stats = IOStats()
        #: lockdep witness (Database(protocol_checks=True)); the store
        #: outlives restarts, so each Database assembly rebinds or
        #: clears it
        self.witness = None
        self._lock = threading.Lock()
        self._pages: dict[PageId, Page] = {}
        self._sums: dict[PageId, int] = {}
        self._allocated: set[PageId] = set()
        self._free_list: list[PageId] = []
        self._next_pid: PageId = 0

    def bind_metrics(self, registry) -> None:
        """Expose the I/O counters on a metrics registry as ``io.*``.

        The store keeps its own :class:`IOStats` (it outlives any one
        database across crash/restart cycles); binding registers gauges
        reading them, so re-binding to a fresh registry after restart
        keeps the cumulative disk-traffic history visible.
        """
        registry.gauge("io.reads", lambda: self.stats.reads)
        registry.gauge("io.writes", lambda: self.stats.writes)
        registry.gauge("io.allocations", lambda: self.stats.allocations)
        registry.gauge("io.frees", lambda: self.stats.frees)
        registry.gauge(
            "io.checksum_failures", lambda: self.stats.checksum_failures
        )
        registry.gauge(
            "io.faults_injected", lambda: self.stats.faults_injected
        )

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> PageId:
        """Allocate a page id, reusing freed pages first.

        Reuse is deliberate: it is what makes dangling pointers after a
        node deletion dangerous (section 7.2) and hence what the drain
        technique protects against.
        """
        with self._lock:
            if self._free_list:
                pid = self._free_list.pop()
            else:
                pid = self._next_pid
                self._next_pid += 1
            self._allocated.add(pid)
        self.stats.record_alloc()
        return pid

    def free(self, pid: PageId) -> None:
        """Return a page to the free list (it may be reallocated)."""
        with self._lock:
            self._allocated.discard(pid)
            self._free_list.append(pid)
            page = self._pages.get(pid)
            if page is not None:
                page.kind = PageKind.FREE
        self.stats.record_free()

    def mark_allocated(self, pid: PageId) -> None:
        """Recovery redo of a Get-Page record: mark ``pid`` unavailable."""
        with self._lock:
            self._allocated.add(pid)
            if pid in self._free_list:
                self._free_list.remove(pid)
            self._next_pid = max(self._next_pid, pid + 1)

    def mark_free(self, pid: PageId) -> None:
        """Recovery redo of a Free-Page record: mark ``pid`` available."""
        with self._lock:
            if pid in self._allocated:
                self._allocated.discard(pid)
                self._free_list.append(pid)

    def is_allocated(self, pid: PageId) -> bool:
        """True if ``pid`` is currently allocated."""
        with self._lock:
            return pid in self._allocated

    def allocated_pids(self) -> list[PageId]:
        """Sorted list of all allocated page ids."""
        with self._lock:
            return sorted(self._allocated)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, pid: PageId) -> Page:
        """Read a page snapshot from disk (pays ``io_delay``).

        Raises :class:`~repro.errors.TransientIOError` when the fault
        plan fails this attempt, and :class:`~repro.errors.TornPageError`
        when the persisted snapshot's checksum does not match its
        content (a torn write reached disk).
        """
        if self.fault_plan is not None:
            if self.fault_plan.on_read(pid) is not None:
                self.stats.record_fault()
                raise TransientIOError(
                    f"injected transient read error on page {pid}"
                )
        witness = self.witness
        if witness is not None:
            witness.note_io("read", pid)
        self._io_stall()
        self.stats.record_read()
        with self._lock:
            page = self._pages.get(pid)
            if page is None:
                raise PageNotFoundError(f"page {pid} has never been written")
            snapshot = page.snapshot()
            stored_sum = self._sums.get(pid)
        if (
            self.checksums
            and stored_sum is not None
            and page_checksum(snapshot) != stored_sum
        ):
            self.stats.record_checksum_failure()
            raise TornPageError(
                f"page {pid} failed checksum verification (torn write)"
            )
        return snapshot

    def write(self, page: Page) -> None:
        """Write a page snapshot to disk (pays ``io_delay``).

        Raises :class:`~repro.errors.DiskWriteError` on an injected
        permanent write fault (nothing is persisted); an injected torn
        write persists a half-updated image under the checksum of the
        intended one, so the damage is detected on the next read.
        """
        action = None
        if self.fault_plan is not None:
            action = self.fault_plan.on_write(page.pid)
        if action is FaultKind.PERMANENT_WRITE:
            self.stats.record_fault()
            raise DiskWriteError(
                f"injected permanent write error on page {page.pid}"
            )
        witness = self.witness
        if witness is not None:
            # the WAL-rule check (page_lsn vs flushed LSN) runs before
            # the image can possibly reach the simulated platter
            witness.note_io("write", page.pid, page_lsn=page.page_lsn)
        self._io_stall()
        self.stats.record_write()
        snapshot = page.snapshot()
        checksum = page_checksum(snapshot) if self.checksums else None
        with self._lock:
            if action is FaultKind.TORN_WRITE:
                self.stats.record_fault()
                snapshot = self._tear(snapshot, self._pages.get(page.pid))
            self._pages[page.pid] = snapshot
            if checksum is not None:
                self._sums[page.pid] = checksum

    def _tear(self, intended: Page, prev: Page | None) -> Page:
        """A torn image: new header + first half, stale second half.

        If the mangling happens to reproduce the intended content (the
        write changed nothing), the fault is recorded as skipped and the
        clean image is persisted — an undetectable tear of identical
        data is by definition harmless.
        """
        torn = intended.snapshot()
        half = len(torn.entries) // 2
        if prev is not None and prev.entries:
            torn.entries = torn.entries[:half] + [
                e.copy() for e in prev.entries[half:]
            ]
        elif torn.entries:
            torn.entries = torn.entries[:half]
        if page_checksum(torn) == page_checksum(intended):
            if torn.entries:
                torn.entries = torn.entries[:-1]
            else:
                if self.fault_plan is not None:
                    self.fault_plan.note_skipped(
                        f"torn write of page {intended.pid} left no "
                        "detectable damage"
                    )
                return intended
        return torn

    def exists(self, pid: PageId) -> bool:
        """True if the page has ever been flushed to disk."""
        with self._lock:
            return pid in self._pages

    def new_page(self, kind: PageKind, level: int = 0) -> Page:
        """Allocate an id and build a fresh in-memory page image.

        The image is *not* written to disk; the caller owns flushing it
        through the buffer pool under the WAL protocol.
        """
        pid = self.allocate()
        return Page(
            pid=pid,
            kind=kind,
            level=level,
            rightlink=NO_PAGE,
            capacity=self.page_capacity,
        )

    def _io_stall(self) -> None:
        if self.io_delay > 0.0:
            time.sleep(self.io_delay)

    # ------------------------------------------------------------------
    # crash / inspection support
    # ------------------------------------------------------------------
    def disk_image(self) -> dict[PageId, Page]:
        """Snapshots of every page currently on disk (for assertions)."""
        with self._lock:
            return {pid: page.snapshot() for pid, page in self._pages.items()}

    def max_durable_lsn(self) -> int:
        """The highest ``page_lsn`` persisted on disk.

        Crash-time WAL tail faults must never reach below this boundary:
        a page write only happens *after* the log covering its LSN was
        forced, so a torn final log write cannot affect records that a
        persisted page already depends on.
        """
        with self._lock:
            return max(
                (page.page_lsn for page in self._pages.values()), default=0
            )
