"""The simulated disk: a persistent page store with I/O latency.

The paper's headline concurrency property is that **no node latches are
held during I/Os**.  To make that property measurable in pure Python we
model the disk as an in-memory dict of page snapshots with a configurable
per-operation latency (``io_delay``), implemented as a real sleep.  A
sleep releases the GIL, so protocols that hold latches across I/O (the
lock-coupling and subtree-locking baselines) genuinely serialize, while
the link protocol genuinely overlaps I/O with other threads' work.  This
is the substitution documented in DESIGN.md §2.

The store also provides the persistence boundary for crash simulation:
whatever was explicitly written here survives :meth:`BufferPool.crash`;
everything else is lost and must be reconstructed by restart recovery.
"""

from __future__ import annotations

import threading
import time

from repro.errors import PageNotFoundError
from repro.storage.page import NO_PAGE, Page, PageId, PageKind


class IOStats:
    """Counters for disk traffic (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0

    def record_read(self) -> None:
        """Count one page read."""
        with self._lock:
            self.reads += 1

    def record_write(self) -> None:
        """Count one page write."""
        with self._lock:
            self.writes += 1

    def record_alloc(self) -> None:
        """Count one page allocation."""
        with self._lock:
            self.allocations += 1

    def record_free(self) -> None:
        """Count one page free."""
        with self._lock:
            self.frees += 1

    def snapshot(self) -> dict[str, int]:
        """Thread-safe snapshot of the counters."""
        with self._lock:
            return {
                "reads": self.reads,
                "writes": self.writes,
                "allocations": self.allocations,
                "frees": self.frees,
            }


class PageStore:
    """A crash-consistent page store ("the disk").

    Parameters
    ----------
    io_delay:
        Seconds of simulated latency per read/write.  ``0.0`` disables the
        sleep entirely (unit tests); benchmarks sweep this knob.
    page_capacity:
        Default entry capacity for newly allocated pages.
    """

    def __init__(self, io_delay: float = 0.0, page_capacity: int = 64) -> None:
        self.io_delay = io_delay
        self.page_capacity = page_capacity
        self.stats = IOStats()
        self._lock = threading.Lock()
        self._pages: dict[PageId, Page] = {}
        self._allocated: set[PageId] = set()
        self._free_list: list[PageId] = []
        self._next_pid: PageId = 0

    def bind_metrics(self, registry) -> None:
        """Expose the I/O counters on a metrics registry as ``io.*``.

        The store keeps its own :class:`IOStats` (it outlives any one
        database across crash/restart cycles); binding registers gauges
        reading them, so re-binding to a fresh registry after restart
        keeps the cumulative disk-traffic history visible.
        """
        registry.gauge("io.reads", lambda: self.stats.reads)
        registry.gauge("io.writes", lambda: self.stats.writes)
        registry.gauge("io.allocations", lambda: self.stats.allocations)
        registry.gauge("io.frees", lambda: self.stats.frees)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> PageId:
        """Allocate a page id, reusing freed pages first.

        Reuse is deliberate: it is what makes dangling pointers after a
        node deletion dangerous (section 7.2) and hence what the drain
        technique protects against.
        """
        with self._lock:
            if self._free_list:
                pid = self._free_list.pop()
            else:
                pid = self._next_pid
                self._next_pid += 1
            self._allocated.add(pid)
        self.stats.record_alloc()
        return pid

    def free(self, pid: PageId) -> None:
        """Return a page to the free list (it may be reallocated)."""
        with self._lock:
            self._allocated.discard(pid)
            self._free_list.append(pid)
            page = self._pages.get(pid)
            if page is not None:
                page.kind = PageKind.FREE
        self.stats.record_free()

    def mark_allocated(self, pid: PageId) -> None:
        """Recovery redo of a Get-Page record: mark ``pid`` unavailable."""
        with self._lock:
            self._allocated.add(pid)
            if pid in self._free_list:
                self._free_list.remove(pid)
            self._next_pid = max(self._next_pid, pid + 1)

    def mark_free(self, pid: PageId) -> None:
        """Recovery redo of a Free-Page record: mark ``pid`` available."""
        with self._lock:
            if pid in self._allocated:
                self._allocated.discard(pid)
                self._free_list.append(pid)

    def is_allocated(self, pid: PageId) -> bool:
        """True if ``pid`` is currently allocated."""
        with self._lock:
            return pid in self._allocated

    def allocated_pids(self) -> list[PageId]:
        """Sorted list of all allocated page ids."""
        with self._lock:
            return sorted(self._allocated)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, pid: PageId) -> Page:
        """Read a page snapshot from disk (pays ``io_delay``)."""
        self._io_stall()
        self.stats.record_read()
        with self._lock:
            page = self._pages.get(pid)
            if page is None:
                raise PageNotFoundError(f"page {pid} has never been written")
            return page.snapshot()

    def write(self, page: Page) -> None:
        """Write a page snapshot to disk (pays ``io_delay``)."""
        self._io_stall()
        self.stats.record_write()
        snapshot = page.snapshot()
        with self._lock:
            self._pages[page.pid] = snapshot

    def exists(self, pid: PageId) -> bool:
        """True if the page has ever been flushed to disk."""
        with self._lock:
            return pid in self._pages

    def new_page(self, kind: PageKind, level: int = 0) -> Page:
        """Allocate an id and build a fresh in-memory page image.

        The image is *not* written to disk; the caller owns flushing it
        through the buffer pool under the WAL protocol.
        """
        pid = self.allocate()
        return Page(
            pid=pid,
            kind=kind,
            level=level,
            rightlink=NO_PAGE,
            capacity=self.page_capacity,
        )

    def _io_stall(self) -> None:
        if self.io_delay > 0.0:
            time.sleep(self.io_delay)

    # ------------------------------------------------------------------
    # crash / inspection support
    # ------------------------------------------------------------------
    def disk_image(self) -> dict[PageId, Page]:
        """Snapshots of every page currently on disk (for assertions)."""
        with self._lock:
            return {pid: page.snapshot() for pid, page in self._pages.items()}
