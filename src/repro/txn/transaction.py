"""Transactions and savepoints.

A :class:`Transaction` is the unit of atomicity and of two-phase locking.
It tracks, besides its id and state:

* the **signaling locks** it holds on tree nodes (section 7.2) — S-mode
  node locks set when a traversal stacks a pointer to the node, normally
  released when the node is visited, except (a) the insert target leaf's
  lock, which lives to end of transaction, and (b) locks *pinned* by a
  savepoint (section 10.2), which must survive until the savepoint can no
  longer be rolled back to;
* its open **cursors**, whose positions must be restorable on partial
  rollback (section 10.2);
* its **savepoints**: the log position to roll back to plus snapshots of
  the cursor stacks and the then-held signaling locks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TransactionStateError


class IsolationLevel(Enum):
    """Supported degrees of isolation ([Gra78], section 4).

    ``REPEATABLE_READ`` is Degree 3 (the paper's subject): record locks
    held to end of transaction plus node-attached predicate locks.
    ``READ_COMMITTED`` is Degree 2: instant-duration record locks, no
    predicates.  ``READ_UNCOMMITTED`` is Degree 1: no read locks at all
    — scans may see uncommitted data; provided for completeness and as
    the fastest possible read path.
    """

    READ_UNCOMMITTED = "read-uncommitted"
    READ_COMMITTED = "read-committed"
    REPEATABLE_READ = "repeatable-read"


class TxnState(Enum):
    """Transaction lifecycle states."""

    ACTIVE = "active"
    ROLLING_BACK = "rolling-back"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(eq=False)
class Savepoint:
    """A rollback target inside a transaction (section 10.2).

    Identity semantics (``eq=False``): two savepoints taken at the same
    log position are still distinct rollback targets.
    """

    name: str
    lsn: int
    #: cursor -> snapshot of its traversal stack at savepoint time
    cursor_stacks: dict = field(default_factory=dict)
    #: signaling-lock names held at savepoint time: must not be released
    #: by node visits until the savepoint is popped
    pinned_signaling: set = field(default_factory=set)


class Transaction:
    """One transaction.  Created by :class:`~repro.txn.manager.TransactionManager`."""

    def __init__(
        self, xid: int, isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ
    ) -> None:
        self.xid = xid
        self.isolation = isolation
        self.state = TxnState.ACTIVE
        self._mutex = threading.Lock()
        #: signaling-lock names -> acquisition count (section 7.2)
        self._signaling: dict[object, int] = {}
        #: signaling locks pinned by live savepoints
        self._pinned_signaling: set[object] = set()
        #: signaling locks that must survive to end of transaction
        #: (the insert target leaf rule, section 7.2 / section 9)
        self._eot_signaling: set[object] = set()
        #: open cursors registered for savepoint restoration
        self._cursors: list = []
        self.savepoints: list[Savepoint] = []

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """True while the transaction can still be committed or rolled back."""
        return self.state in (TxnState.ACTIVE, TxnState.ROLLING_BACK)

    def require_active(self) -> None:
        """Raise unless the transaction accepts new operations."""
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.xid} is {self.state.value}, not active"
            )

    @property
    def repeatable_read(self) -> bool:
        """True at Degree 3 isolation."""
        return self.isolation is IsolationLevel.REPEATABLE_READ

    # ------------------------------------------------------------------
    # signaling-lock bookkeeping (locks themselves live in LockManager)
    # ------------------------------------------------------------------
    def note_signaling(self, name: object) -> None:
        """Record one signaling-lock acquisition for bookkeeping."""
        with self._mutex:
            self._signaling[name] = self._signaling.get(name, 0) + 1

    def may_release_signaling(self, name: object) -> bool:
        """True if a node visit may release this signaling lock now."""
        with self._mutex:
            if name in self._pinned_signaling or name in self._eot_signaling:
                return False
            return self._signaling.get(name, 0) > 0

    def drop_signaling(self, name: object) -> None:
        """Record one signaling-lock release."""
        with self._mutex:
            count = self._signaling.get(name, 0) - 1
            if count <= 0:
                self._signaling.pop(name, None)
            else:
                self._signaling[name] = count

    def pin_signaling_to_eot(self, name: object) -> None:
        """Retain a signaling lock until end of transaction (§7.2)."""
        with self._mutex:
            self._eot_signaling.add(name)

    def signaling_names(self) -> set[object]:
        """Names of all signaling locks this transaction tracks."""
        with self._mutex:
            return set(self._signaling) | set(self._eot_signaling)

    # ------------------------------------------------------------------
    # cursors / savepoints
    # ------------------------------------------------------------------
    def register_cursor(self, cursor: object) -> None:
        """Track an open cursor for savepoint position snapshots."""
        with self._mutex:
            self._cursors.append(cursor)

    def unregister_cursor(self, cursor: object) -> None:
        """Stop tracking a closed cursor."""
        with self._mutex:
            if cursor in self._cursors:
                self._cursors.remove(cursor)

    def open_cursors(self) -> list:
        """The currently registered cursors."""
        with self._mutex:
            return list(self._cursors)

    def add_savepoint(self, savepoint: Savepoint) -> None:
        """Register a savepoint and pin its signaling locks."""
        with self._mutex:
            self.savepoints.append(savepoint)
            self._pinned_signaling |= savepoint.pinned_signaling

    def pop_savepoints_after(self, savepoint: Savepoint) -> None:
        """Discard savepoints established after ``savepoint``."""
        with self._mutex:
            while self.savepoints and self.savepoints[-1] is not savepoint:
                self.savepoints.pop()
            self._recompute_pins_locked()

    def release_savepoint(self, savepoint: Savepoint) -> None:
        """Drop a savepoint (its pins are recomputed away)."""
        with self._mutex:
            if savepoint in self.savepoints:
                self.savepoints.remove(savepoint)
            self._recompute_pins_locked()

    def _recompute_pins_locked(self) -> None:
        self._pinned_signaling = set()
        for savepoint in self.savepoints:
            self._pinned_signaling |= savepoint.pinned_signaling

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(xid={self.xid}, {self.isolation.value}, "
            f"{self.state.value})"
        )
