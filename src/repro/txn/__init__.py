"""Transactions: lifecycle, two-phase locking, savepoints, rollback."""

from repro.txn.manager import TransactionManager, txn_lock_name
from repro.txn.transaction import (
    IsolationLevel,
    Savepoint,
    Transaction,
    TxnState,
)

__all__ = [
    "IsolationLevel",
    "Savepoint",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "txn_lock_name",
]
