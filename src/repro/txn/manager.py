"""The transaction manager: begin / commit / rollback / savepoints.

Commit forces the log (WAL durability), releases the transaction's
predicates and locks, and logs an End record.  Rollback walks the
transaction's log backchain, dispatching each undoable record to the
**undo executor** (installed by the database assembly): page-oriented
records compensate in place, leaf content records undo *logically*
through the owning tree (section 9.2).  Compensation records carry
``undo_next``, so a rollback interrupted by a crash never undoes the
same record twice, and nested-top-action DummyClrs make structure
modifications invisible to rollback (section 9.1).

Blocking "on a predicate" (section 10.3) is implemented here exactly as
the paper suggests: every transaction X-locks its own id at start; an
operation that must wait for transaction T requests an S lock on
``("txn", T)``, which is granted only once T commits or aborts.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import TransactionStateError
from repro.lock.manager import LockManager
from repro.lock.modes import LockMode
from repro.txn.transaction import (
    IsolationLevel,
    Savepoint,
    Transaction,
    TxnState,
)
from repro.wal.log import LogManager
from repro.wal.records import (
    NULL_LSN,
    AbortRecord,
    CommitRecord,
    EndRecord,
    LogRecord,
)


def txn_lock_name(xid: int) -> tuple[str, int]:
    """Lock name under which a transaction's lifetime is visible."""
    return ("txn", xid)


class TransactionManager:
    """Creates transactions and drives commit / rollback."""

    def __init__(
        self,
        log: LogManager,
        locks: LockManager,
        predicates: "object | None" = None,
    ) -> None:
        self.log = log
        self.locks = locks
        #: the predicate manager; optional so the storage layers can be
        #: tested without one (set by the database assembly)
        self.predicates = predicates
        #: installed by the database assembly: performs the undo of one
        #: log record (writing its CLR) on behalf of a rolling-back txn
        self.undo_executor: Callable[[LogRecord, Transaction], None] | None = None
        self._mutex = threading.Lock()
        self._next_xid = 1
        self._active: dict[int, Transaction] = {}
        self.committed_xids: set[int] = set()
        self.aborted_xids: set[int] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(
        self, isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ
    ) -> Transaction:
        """Create a new transaction and take its self-lock."""
        with self._mutex:
            xid = self._next_xid
            self._next_xid += 1
        txn = Transaction(xid, isolation)
        # Every transaction X-locks its own id so others can block on its
        # termination (the "block on a predicate" device of §10.3).
        self.locks.acquire(xid, txn_lock_name(xid), LockMode.X)
        with self._mutex:
            self._active[xid] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: force the commit record, release locks/predicates, log End."""
        txn.require_active()
        lsn = self.log.append(CommitRecord(xid=txn.xid))
        self.log.flush(lsn)  # commit is durable before it is acknowledged
        self._finish(txn, TxnState.COMMITTED)
        self.log.append(EndRecord(xid=txn.xid))

    def commit_many(self, txns: "list[Transaction]") -> None:
        """Commit a batch with one log force covering every commit record.

        All commit records are appended via the batched log path, then a
        single flush to the highest LSN makes the whole batch durable
        at once — the caller-driven analogue of group commit, for
        callers holding several ready-to-commit transactions.  Finish
        work (lock/predicate release, End records) follows per
        transaction, in order.
        """
        if not txns:
            return
        for txn in txns:
            txn.require_active()
        lsns = self.log.append_many(
            [CommitRecord(xid=txn.xid) for txn in txns]
        )
        self.log.flush(lsns[-1])
        for txn in txns:
            self._finish(txn, TxnState.COMMITTED)
        self.log.append_many([EndRecord(xid=txn.xid) for txn in txns])

    def rollback(self, txn: Transaction) -> None:
        """Abort ``txn``: undo all its effects, then release everything."""
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionStateError(
                f"cannot roll back finished transaction {txn.xid}"
            )
        txn.state = TxnState.ROLLING_BACK
        self.log.append(AbortRecord(xid=txn.xid))
        self._undo_back_to(txn, NULL_LSN)
        self._finish(txn, TxnState.ABORTED)
        self.log.append(EndRecord(xid=txn.xid))

    def _finish(self, txn: Transaction, state: TxnState) -> None:
        if self.predicates is not None:
            self.predicates.release_transaction(txn.xid)
        self.locks.release_all(txn.xid)
        txn.state = state
        with self._mutex:
            self._active.pop(txn.xid, None)
            if state is TxnState.COMMITTED:
                self.committed_xids.add(txn.xid)
            else:
                self.aborted_xids.add(txn.xid)

    # ------------------------------------------------------------------
    # savepoints (section 10.2)
    # ------------------------------------------------------------------
    def savepoint(self, txn: Transaction, name: str = "") -> Savepoint:
        """Establish a savepoint: log position + cursor + signaling state."""
        txn.require_active()
        stacks = {
            cursor: cursor.snapshot_stack() for cursor in txn.open_cursors()
        }
        # Signaling locks live when the savepoint is established must not
        # be released by later node visits (section 10.2): the rollback
        # may resurrect the stacked pointers they protect.
        pinned = {
            lock_name
            for lock_name in self.locks.locks_of(txn.xid)
            if isinstance(lock_name, tuple) and lock_name[:1] == ("node",)
        }
        savepoint = Savepoint(
            name=name,
            lsn=self.log.last_lsn_of(txn.xid),
            cursor_stacks=stacks,
            pinned_signaling=pinned,
        )
        txn.add_savepoint(savepoint)
        return savepoint

    def rollback_to_savepoint(
        self, txn: Transaction, savepoint: Savepoint
    ) -> None:
        """Partial rollback: undo work done after the savepoint.

        Locks are *not* released (standard strict-2PL savepoint
        semantics); cursor positions are restored from the snapshot.
        """
        txn.require_active()
        if savepoint not in txn.savepoints:
            raise TransactionStateError(
                f"savepoint {savepoint.name!r} is not live in txn {txn.xid}"
            )
        txn.state = TxnState.ROLLING_BACK
        try:
            self._undo_back_to(txn, savepoint.lsn)
        finally:
            txn.state = TxnState.ACTIVE
        for cursor, stack in savepoint.cursor_stacks.items():
            cursor.restore_stack(stack)
        txn.pop_savepoints_after(savepoint)

    # ------------------------------------------------------------------
    # undo driver
    # ------------------------------------------------------------------
    def _undo_back_to(self, txn: Transaction, stop_lsn: int) -> None:
        """Undo ``txn``'s records with lsn > stop_lsn, newest first.

        Follows the ARIES backchain: compensation records are never
        undone, their ``undo_next`` jumps over already-undone (or
        atomically-committed) work.
        """
        lsn = self.log.last_lsn_of(txn.xid)
        while lsn > stop_lsn and lsn != NULL_LSN:
            record = self.log.get(lsn)
            if record.undo_next is not None:
                lsn = record.undo_next
                continue
            if record.undoable:
                if self.undo_executor is None:
                    raise TransactionStateError(
                        "no undo executor installed; cannot roll back"
                    )
                self.undo_executor(record, txn)
            lsn = record.prev_lsn

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_transactions(self) -> list[Transaction]:
        """Transactions currently in flight."""
        with self._mutex:
            return list(self._active.values())

    def is_committed(self, xid: int) -> bool:
        """True once ``xid`` committed (garbage collection's visibility test)."""
        with self._mutex:
            return xid in self.committed_xids

    def is_finished(self, xid: int) -> bool:
        """True once ``xid`` committed or aborted."""
        with self._mutex:
            return xid in self.committed_xids or xid in self.aborted_xids

    def oldest_active_xid(self) -> int | None:
        """Smallest in-flight xid, or ``None`` when quiesced."""
        with self._mutex:
            if not self._active:
                return None
            return min(self._active)

    def restore_counters(self, next_xid: int) -> None:
        """Advance the xid counter past recovered transactions."""
        with self._mutex:
            self._next_xid = max(self._next_xid, next_xid)
