"""Inspection and debugging tools for live databases."""

from repro.tools.inspect import (
    describe_record,
    dump_log,
    dump_tree,
    format_stats,
    lock_table_report,
)

__all__ = [
    "describe_record",
    "dump_log",
    "dump_tree",
    "format_stats",
    "lock_table_report",
]
