"""Pretty-printer for op-span traces and flight-recorder black boxes.

Renders the JSONL artifacts the observability layer exports —
per-operation spans (``SpanTracker.export_jsonl``) and flight-recorder
dumps (``FlightRecorder.dump``) — as aligned ASCII, with per-kind
latency attribution (time in latch waits vs lock waits vs IO vs WAL vs
CPU).  The file format is auto-detected per line: flight events carry
``seq``/``name``, spans carry ``op_id``/``kind``.

Usage::

    PYTHONPATH=src python -m repro.tools.trace spans.jsonl
    PYTHONPATH=src python -m repro.tools.trace blackbox.jsonl
    PYTHONPATH=src python -m repro.tools.trace --demo

``--demo`` runs a small seeded traced workload and prints its spans —
a zero-setup way to see what ``op_tracing=True`` buys.
"""

from __future__ import annotations

from repro.harness.report import render_table
from repro.obs.export import load_jsonl
from repro.obs.spans import ATTRIBUTION_FIELDS

__all__ = [
    "render_flight_events",
    "render_span_attribution",
    "render_span_table",
]


def _us(ns: object) -> float:
    return float(ns or 0) / 1000.0


def render_span_table(spans: list[dict], *, limit: int = 40) -> str:
    """One row per span: identity plus the full attribution split."""
    rows = []
    for span in spans[-limit:]:
        rows.append(
            {
                "op": span.get("op_id"),
                "kind": span.get("kind"),
                "tree": span.get("tree", ""),
                "total_us": _us(span.get("total_ns")),
                "latch_us": _us(span.get("latch_wait_ns")),
                "lock_us": _us(span.get("lock_wait_ns")),
                "io_us": _us(span.get("io_ns")),
                "wal_us": _us(span.get("wal_ns")),
                "cpu_us": _us(span.get("cpu_ns")),
                "fixes": span.get("buffer_fixes", 0),
                "wal+": span.get("wal_appends", 0),
            }
        )
    title = f"op spans ({len(spans)} total, last {len(rows)} shown)"
    if not rows:
        return f"{title}\n(no spans recorded)"
    return render_table(rows, title=title)


def render_span_attribution(spans: list[dict]) -> str:
    """Aggregate per-kind: where did each operation type spend time?"""
    agg: dict[str, dict[str, float]] = {}
    for span in spans:
        bucket = agg.setdefault(
            str(span.get("kind")),
            {"count": 0, "total_ns": 0.0, "cpu_ns": 0.0}
            | {f: 0.0 for f in ATTRIBUTION_FIELDS},
        )
        bucket["count"] += 1
        bucket["total_ns"] += float(span.get("total_ns") or 0)
        bucket["cpu_ns"] += float(span.get("cpu_ns") or 0)
        for f in ATTRIBUTION_FIELDS:
            bucket[f] += float(span.get(f) or 0)
    rows = []
    for kind in sorted(agg):
        bucket = agg[kind]
        total = bucket["total_ns"] or 1.0
        rows.append(
            {
                "kind": kind,
                "count": int(bucket["count"]),
                "total_ms": bucket["total_ns"] / 1e6,
                "latch%": 100.0 * bucket["latch_wait_ns"] / total,
                "lock%": 100.0 * bucket["lock_wait_ns"] / total,
                "io%": 100.0 * bucket["io_ns"] / total,
                "wal%": 100.0 * bucket["wal_ns"] / total,
                "cpu%": 100.0 * bucket["cpu_ns"] / total,
            }
        )
    if not rows:
        return "attribution\n(no spans recorded)"
    return render_table(rows, title="latency attribution by op kind")


def render_flight_events(events: list[dict], *, limit: int = 80) -> str:
    """The black box, one line per event, oldest first."""
    lines = [f"flight recorder ({len(events)} events)"]
    for event in events[-limit:]:
        seq = event.get("seq")
        name = event.get("name")
        data = {
            k: v
            for k, v in event.items()
            if k not in ("seq", "name", "data", "ts_ns", "thread")
        }
        nested = event.get("data")
        if isinstance(nested, dict):
            data.update(nested)
        rendered = " ".join(f"{k}={v!r}" for k, v in sorted(data.items()))
        lines.append(f"  #{seq:<6} {name:<28} {rendered}".rstrip())
    if len(events) > limit:
        lines.insert(1, f"  ... ({len(events) - limit} older omitted)")
    return "\n".join(lines)


def render_file(path: str) -> str:
    """Auto-detect and render a span or flight-recorder JSONL file."""
    records = load_jsonl(path)
    if not records:
        return f"{path}: empty"
    if "op_id" in records[0]:
        return "\n\n".join(
            [render_span_table(records), render_span_attribution(records)]
        )
    return render_flight_events(records)


def _demo() -> str:
    """Run a tiny traced workload and render its spans."""
    from repro.workload.scenario import run_scenario

    result = run_scenario(seed=7, ops=60, threads=2, op_tracing=True)
    spans = [s.as_dict() for s in result.db.spans.completed()]
    parts = [render_span_table(spans), render_span_attribution(spans)]
    if result.db.flightrec is not None:
        parts.append(
            render_flight_events(
                [e.as_dict() for e in result.db.flightrec.events()],
                limit=12,
            )
        )
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="pretty-print op-span / flight-recorder JSONL"
    )
    parser.add_argument(
        "paths", nargs="*", help="JSONL files to render (auto-detected)"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small traced workload and render its spans",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.demo:
        parser.error("give at least one JSONL path, or --demo")
    outputs = [render_file(path) for path in args.paths]
    if args.demo:
        outputs.append(_demo())
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
