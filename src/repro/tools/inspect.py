"""Human-readable inspection of trees, logs and database state.

Debugging a concurrent index is mostly staring at structure dumps; this
module renders them.  Everything returns strings (callers print), takes
read latches only, and is safe on a live database — output may be a
fuzzy snapshot under concurrency, exactly like any other reader.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage.page import NO_PAGE, PageId
from repro.sync.latch import LatchMode
from repro.wal.log import LogManager
from repro.wal.records import (
    AddLeafEntryRecord,
    CommitRecord,
    DummyClr,
    EndRecord,
    GarbageCollectionRecord,
    InternalEntryAddRecord,
    MarkLeafEntryRecord,
    ParentEntryUpdateRecord,
    RootSplitRecord,
    SplitRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.database import Database
    from repro.gist.tree import GiST


def dump_tree(tree: "GiST", *, max_entries: int = 6) -> str:
    """An indented structural dump of the whole tree.

    Shows, per node: pid, kind, level, NSN, rightlink, BP, and up to
    ``max_entries`` entries (with deletion markers on tombstones).
    """
    pool = tree.db.pool
    lines = [
        f"tree {tree.name!r} (root pid {tree.root_pid}, "
        f"extension {tree.ext.name}, nsn_source {tree.nsn_source})"
    ]

    def render(pid: PageId, depth: int, seen: set[PageId]) -> None:
        if pid in seen:
            lines.append("  " * depth + f"[cycle -> {pid}]")
            return
        seen.add(pid)
        with pool.fixed(pid, LatchMode.S) as frame:
            page = frame.page.snapshot()
        indent = "  " * depth
        right = (
            f" ->{page.rightlink}" if page.rightlink != NO_PAGE else ""
        )
        lines.append(
            f"{indent}[{page.pid}] {page.kind.value} L{page.level} "
            f"nsn={page.nsn}{right} "
            f"n={len(page.entries)}/{page.capacity} bp={page.bp!r}"
        )
        if page.is_leaf:
            shown = page.entries[:max_entries]
            for entry in shown:
                marker = (
                    f"  (deleted by {entry.delete_xid})"
                    if entry.deleted
                    else ""
                )
                lines.append(
                    f"{indent}  - {entry.key!r} => {entry.rid!r}{marker}"
                )
            if len(page.entries) > max_entries:
                lines.append(
                    f"{indent}  ... {len(page.entries) - max_entries} more"
                )
        else:
            for entry in page.entries:
                lines.append(
                    f"{indent}  |- {entry.pred!r} -> {entry.child}"
                )
            for entry in page.entries:
                render(entry.child, depth + 1, seen)

    render(tree.root_pid, 0, set())
    return "\n".join(lines)


def describe_record(record) -> str:
    """One-line description of a log record."""
    base = f"{record.lsn:>5}  x{record.xid:<4} {record.type_name():<26}"
    if isinstance(record, AddLeafEntryRecord):
        detail = f"page={record.page_id} +({record.key!r},{record.rid!r})"
    elif isinstance(record, MarkLeafEntryRecord):
        detail = f"page={record.page_id} ~({record.key!r},{record.rid!r})"
    elif isinstance(record, SplitRecord):
        detail = (
            f"{record.orig_pid} => {record.new_pid} "
            f"(moved {len(record.moved_entries)}, nsn {record.old_nsn}"
            f"->{record.new_nsn})"
        )
    elif isinstance(record, RootSplitRecord):
        detail = (
            f"root {record.root_pid} -> children "
            f"{record.left_pid},{record.right_pid}"
        )
    elif isinstance(record, ParentEntryUpdateRecord):
        detail = f"child={record.child_pid} parent={record.parent_pid}"
    elif isinstance(record, InternalEntryAddRecord):
        detail = f"page={record.page_id} +child {record.child}"
    elif isinstance(record, GarbageCollectionRecord):
        detail = f"page={record.page_id} -{len(record.rids)} entries"
    elif isinstance(record, DummyClr):
        detail = f"nta-end (undo_next={record.undo_next})"
    elif isinstance(record, (CommitRecord, EndRecord)):
        detail = ""
    else:
        detail = ""
    clr = (
        f" [CLR->{record.undo_next}]"
        if record.undo_next is not None
        and not isinstance(record, DummyClr)
        else ""
    )
    return f"{base} {detail}{clr}".rstrip()


def dump_log(
    log: LogManager, *, start_lsn: int = 1, limit: int | None = None
) -> str:
    """Render the log tail as one line per record."""
    lines = [
        f"log: end_lsn={log.end_lsn} flushed={log.flushed_lsn} "
        f"master={log.master_lsn}"
    ]
    count = 0
    for record in log.records_from(start_lsn):
        lines.append(describe_record(record))
        count += 1
        if limit is not None and count >= limit:
            lines.append(f"... (truncated at {limit} records)")
            break
    return "\n".join(lines)


def format_stats(db: "Database") -> str:
    """Render :meth:`Database.stats` as an indented report."""
    snapshot = db.stats()
    lines = []
    for section, values in snapshot.items():
        lines.append(f"{section}:")
        if section == "trees":
            for name, tree_stats in values.items():
                lines.append(f"  {name}:")
                for key, value in tree_stats.items():
                    lines.append(f"    {key}: {value}")
        else:
            for key, value in values.items():
                lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def dump_stats(db: "Database") -> str:
    """Render ``db.metrics.snapshot()`` as aligned ASCII tables.

    Scalar instruments (counters and gauges) land in one table, latency
    histograms in another (values converted to microseconds).  Metric
    names are the dotted contract names from README.md "Observability".
    """
    from repro.harness.report import render_table

    snapshot = db.metrics.snapshot()
    scalars: list[dict] = []
    histograms: list[dict] = []

    def walk(node: dict, prefix: str) -> None:
        for key in sorted(node):
            value = node[key]
            name = f"{prefix}.{key}" if prefix else key
            if isinstance(value, dict):
                if "p50" in value and "count" in value:
                    histograms.append(
                        {
                            "histogram": name,
                            "count": value["count"],
                            "avg_us": value["avg"] / 1000.0,
                            "p50_us": value["p50"] / 1000.0,
                            "p95_us": value["p95"] / 1000.0,
                            "p99_us": value["p99"] / 1000.0,
                            "max_us": value["max"] / 1000.0,
                        }
                    )
                else:
                    walk(value, name)
            else:
                scalars.append({"metric": name, "value": value})

    walk(snapshot, "")
    parts = []
    if scalars:
        parts.append(render_table(scalars, title="metrics"))
    if histograms:
        parts.append(
            render_table(histograms, title="latency histograms (us)")
        )
    if not parts:
        return "metrics\n(no instruments registered)"
    return "\n\n".join(parts)


def lock_table_report(db: "Database") -> str:
    """Who holds what: one line per held lock name."""
    lines = ["lock table:"]
    seen = set()
    for txn in db.txns.active_transactions():
        for name in sorted(db.locks.locks_of(txn.xid), key=repr):
            if name in seen:
                continue
            seen.add(name)
            holders = db.locks.holders(name)
            rendered = ", ".join(
                f"x{owner}:{mode.value}" for owner, mode in holders.items()
            )
            lines.append(f"  {name!r}: {rendered}")
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
