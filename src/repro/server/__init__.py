"""Network serving layer: admission control, deadlines, shed-don't-collapse.

``repro.server`` puts a TCP front end over a
:class:`~repro.database.Database` or
:class:`~repro.cluster.partitioned.PartitionedDatabase`.  Its job is
not to add query power — the backends already have that — but to keep
the system *well-behaved past saturation*:

* **Admission control** — bounded FIFO queues per operation class
  (point ops vs scans).  A full queue answers with an explicit
  ``RetryLater`` frame carrying a backoff hint; nothing is ever
  silently dropped.
* **Deadline propagation** — clients stamp an absolute deadline on
  every request; the server sheds expired work *at dequeue* (before
  wasting a tree descent) and forwards the remaining budget into the
  cluster RPC timeout, so a hung partition trips its circuit breaker
  instead of hanging the request forever.
* **Rate limiting** — per-client token buckets turn an aggressive
  client into its own problem instead of everyone's.
* **Exact accounting** — every offered request ends in exactly one
  bucket (completed / rejected / shed / failed); the serving benchmark
  asserts the sums balance to the op.

See DESIGN.md §14 for the admission pipeline and the breaker state
machine, and ``benchmarks/bench_serving.py`` for the overload gate.
"""

from repro.server.admission import AdmissionQueue, Ticket
from repro.server.backend import ClusterBackend, LocalBackend
from repro.server.client import PipelinedClient, ReproClient, call_with_retry
from repro.server.ratelimit import RateLimiter, TokenBucket
from repro.server.server import DatabaseServer

__all__ = [
    "AdmissionQueue",
    "ClusterBackend",
    "DatabaseServer",
    "LocalBackend",
    "PipelinedClient",
    "RateLimiter",
    "ReproClient",
    "Ticket",
    "TokenBucket",
    "call_with_retry",
]
