"""Serving backends: one execution contract over both database shapes.

The server core neither knows nor cares whether requests land on an
embedded :class:`~repro.database.Database` or a process-per-partition
:class:`~repro.cluster.partitioned.PartitionedDatabase`; it talks to a
backend object with one method per wire verb, each taking the
request's **remaining deadline budget** as ``timeout``.

* :class:`LocalBackend` executes in-process.  Its ``batch`` mirrors
  the partition worker's transaction shape exactly — one auto-commit
  transaction per batch, commit flushed before the result returns —
  so an acked write is durable under the same contract the cluster
  promises.  Timeouts are accepted but not enforced mid-descent: a
  local descent has no hung-peer failure mode, and the admission
  layer already shed requests whose deadline expired before start.
* :class:`ClusterBackend` forwards the budget into the cluster's
  per-call RPC timeout, which is what arms the hung-partition path:
  a worker that misses the budget is killed, its breaker opens, and
  the resulting :class:`~repro.errors.CircuitOpenError` (or any
  :class:`~repro.errors.PartitionTimeoutError`) is translated into
  the serving layer's explicit backpressure
  (:class:`~repro.errors.RetryLater`) carrying the breaker's own
  retry-after hint.
"""

from __future__ import annotations

from repro.errors import (
    CircuitOpenError,
    best_effort,
    PartitionFailedError,
    PartitionTimeoutError,
    RetryLater,
)

__all__ = ["ClusterBackend", "LocalBackend"]


class LocalBackend:
    """In-process execution over one :class:`~repro.database.Database`.

    The database's own latching and lock manager make it safe for the
    server's worker pool to call concurrently; each batch runs as its
    own transaction exactly as in the partition worker.
    """

    def __init__(self, db) -> None:
        self.db = db

    # -- wire verbs ----------------------------------------------------
    def put(self, tree, key, rid, timeout=None) -> dict:
        return self.batch(tree, [("put", key, rid)], timeout)

    def get(self, tree, key, timeout=None) -> list:
        return self.batch(tree, [("get", key)], timeout)["results"][0]

    def delete(self, tree, key, rid, timeout=None) -> dict:
        return self.batch(tree, [("delete", key, rid)], timeout)

    def multi_put(self, tree, pairs, timeout=None) -> int:
        return self.batch(tree, [("put_many", pairs)], timeout)[
            "results"
        ][0]

    def multi_delete(self, tree, pairs, timeout=None) -> int:
        return self.batch(tree, [("delete_many", pairs)], timeout)[
            "results"
        ][0]

    def multi_get(self, tree, keys, timeout=None) -> dict:
        return self.batch(tree, [("get_many", keys)], timeout)[
            "results"
        ][0]

    def search(self, tree, query, timeout=None) -> list:
        db = self.db
        txn = db.begin()
        try:
            return db.tree(tree).search(txn, query)
        finally:
            db.commit(txn)

    def batch(self, tree_name, ops, timeout=None) -> dict:
        """One transaction over ``ops`` (the worker ``_do_batch`` shape)."""
        db = self.db
        tree = db.tree(tree_name)
        txn = db.begin()
        results: list = []
        try:
            for op in ops:
                kind = op[0]
                if kind == "put":
                    tree.insert(txn, op[1], op[2])
                    results.append(None)
                elif kind == "delete":
                    tree.delete(txn, op[1], op[2])
                    results.append(None)
                elif kind == "put_many":
                    results.append(tree.multi_put(txn, op[1]))
                elif kind == "delete_many":
                    results.append(tree.multi_delete(txn, op[1]))
                elif kind == "get":
                    results.append(
                        [
                            rid
                            for _, rid in tree.search(
                                txn, tree.ext.eq_query(op[1])
                            )
                        ]
                    )
                elif kind == "get_many":
                    results.append(tree.multi_get(txn, op[1]))
                elif kind == "search":
                    results.append(tree.search(txn, op[1]))
                else:
                    raise ValueError(f"unknown batch op {kind!r}")
        except BaseException:
            best_effort(db.rollback, txn)
            raise
        db.commit(txn)
        return {
            "results": results,
            "commit_lsn": db.log.flushed_lsn,
            "durable_lsn": db.log.flushed_lsn,
        }

    # -- observation ---------------------------------------------------
    def snapshot(self) -> dict:
        return self.db.metrics.snapshot()

    def health(self) -> dict:
        return {
            "backend": "local",
            "trees": sorted(self.db.trees),
            "end_lsn": self.db.log.end_lsn,
        }

    def shutdown(self) -> None:
        self.db.shutdown()


class ClusterBackend:
    """Cluster execution: deadline budget becomes the RPC timeout."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def _timeout(self, budget) -> float | None:
        """Deadline budget -> RPC timeout, clamped from above.

        A tight budget shortens the RPC wait (no point waiting past
        the client's deadline), but a generous budget must never
        *extend* it — the configured ``rpc_timeout`` is the hang
        detector, and a patient client should not disable it.
        """
        ceiling = self.cluster.rpc_timeout
        if budget is None:
            return None  # cluster default applies
        if ceiling is None:
            return budget  # no hang detector configured: budget rules
        return min(budget, ceiling)

    def _shed(self, exc) -> "RetryLater":
        """Translate a breaker/timeout failure into backpressure.

        A :class:`CircuitOpenError` knows exactly when the breaker
        will probe; a fresh :class:`PartitionTimeoutError` just
        opened the breaker, so the cooldown is the honest hint.
        """
        if isinstance(exc, CircuitOpenError):
            return RetryLater(exc.retry_after, "circuit_open")
        return RetryLater(
            self.cluster.breaker_cooldown, "partition_timeout"
        )

    # -- wire verbs ----------------------------------------------------
    def put(self, tree, key, rid, timeout=None) -> dict:
        try:
            return self.cluster.put(
                tree, key, rid, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def get(self, tree, key, timeout=None) -> list:
        try:
            return self.cluster.get(
                tree, key, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def delete(self, tree, key, rid, timeout=None) -> dict:
        try:
            return self.cluster.delete(
                tree, key, rid, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def multi_put(self, tree, pairs, timeout=None) -> int:
        try:
            return self.cluster.multi_put(
                tree, pairs, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def multi_delete(self, tree, pairs, timeout=None) -> int:
        try:
            return self.cluster.multi_delete(
                tree, pairs, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def multi_get(self, tree, keys, timeout=None) -> dict:
        try:
            return self.cluster.multi_get(
                tree, keys, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def search(self, tree, query, timeout=None) -> list:
        try:
            return self.cluster.search(
                tree, query, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc

    def batch(self, tree, ops, timeout=None) -> dict:
        try:
            acks = self.cluster.apply_batch(
                tree, ops, timeout=self._timeout(timeout)
            )
        except (CircuitOpenError, PartitionTimeoutError) as exc:
            raise self._shed(exc) from exc
        # Fold the per-partition acks back into the single-node ack
        # shape.  ``apply_batch`` groups ops by routed key preserving
        # relative order within each partition, so replaying the same
        # routing here restores the positional result order.
        order: dict[int, list[int]] = {}
        for i, op in enumerate(ops):
            order.setdefault(
                self.cluster.router.partition_of(op[1]), []
            ).append(i)
        results: list = [None] * len(ops)
        for p, idxs in order.items():
            for idx, res in zip(idxs, acks[p]["results"]):
                results[idx] = res
        return {
            "results": results,
            "commit_lsn": {
                p: acks[p]["commit_lsn"] for p in sorted(acks)
            },
            "durable_lsn": {
                p: acks[p]["durable_lsn"] for p in sorted(acks)
            },
        }

    # -- observation ---------------------------------------------------
    def snapshot(self) -> dict:
        # One retry: the first scatter after a worker death recovers
        # the partition inline and raises; the retry runs clean.  The
        # control plane should report a recovering cluster, not fail.
        try:
            return self.cluster.snapshot()
        except PartitionFailedError:
            return self.cluster.snapshot()

    def health(self) -> dict:
        return {
            "backend": "cluster",
            "partitions": self.cluster.partitions,
            "trees": sorted(self.cluster.catalog),
            "breakers": {
                str(p): b.snapshot()
                for p, b in enumerate(self.cluster._breakers)
            },
        }

    def shutdown(self) -> None:
        self.cluster.shutdown()
