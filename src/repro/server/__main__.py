"""Serving CLI: ``python -m repro.server``.

Two modes:

* default — build a backend (embedded database, or a partitioned
  cluster with ``--partitions N``), start the server, and serve until
  interrupted.
* ``--smoke`` — the CI battery: start a cluster-backed server, drive
  a mixed client workload from several threads, SIGKILL one partition
  worker mid-load, and require (a) the load keeps completing through
  the kill, (b) both the server's and the clients' ledgers balance
  exactly, (c) zero hard protocol violations when the lockdep witness
  is attached, (d) a clean shutdown.  Exit code 0 only if all hold.
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time

from repro.ext.btree import BTreeExtension, Interval
from repro.server.backend import ClusterBackend, LocalBackend
from repro.server.client import ReproClient
from repro.server.loadgen import LoadReport, run_closed_loop
from repro.server.server import DatabaseServer


def _build_backend(args):
    if args.partitions > 0:
        from repro.cluster import PartitionedDatabase

        cluster = PartitionedDatabase(
            args.partitions,
            router="hash",
            data_dir=args.data_dir,
            rpc_timeout=args.rpc_timeout,
            protocol_checks=args.protocol_checks or None,
        )
        cluster.create_tree("serving", BTreeExtension())
        return ClusterBackend(cluster)
    from repro.database import Database

    db = Database(protocol_checks=args.protocol_checks or None)
    db.create_tree("serving", BTreeExtension())
    return LocalBackend(db)


def _serve(args) -> int:
    backend = _build_backend(args)
    server = DatabaseServer(
        backend,
        args.host,
        args.port,
        rate_limit=args.rate_limit,
        blackbox_dir=args.blackbox_dir,
    )
    server.start()
    print(
        f"serving on {args.host}:{server.port} "
        f"(backend={'cluster' if args.partitions else 'local'})",
        flush=True,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        backend.shutdown()
    return 0


def _smoke_client(
    host: str,
    port: int,
    seed: int,
    ops: int,
    reports: list,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    plan = []
    for i in range(ops):
        key = rng.randrange(5_000)
        roll = rng.random()
        if roll < 0.5:
            plan.append(("put", ("serving", key, f"c{seed}-r{i}")))
        elif roll < 0.8:
            plan.append(("get", ("serving", key)))
        else:
            lo = rng.randrange(4_000)
            plan.append(
                ("search", ("serving", Interval(lo, lo + 200)))
            )
    report = run_closed_loop(
        host,
        port,
        plan,
        client_id=f"smoke-{seed}",
        deadline=5.0,
        rng=rng,
    )
    with lock:
        reports.append(report)


def _smoke(args) -> int:
    failures: list[str] = []
    backend = _build_backend(args)
    server = DatabaseServer(
        backend,
        args.host,
        args.port,
        rate_limit=args.rate_limit,
        blackbox_dir=args.blackbox_dir,
    )
    server.start()
    print(f"smoke: serving on port {server.port}", flush=True)
    reports: list[LoadReport] = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_smoke_client,
            args=(
                args.host,
                server.port,
                1000 + c,
                args.smoke_ops,
                reports,
                lock,
            ),
        )
        for c in range(args.smoke_clients)
    ]
    for t in threads:
        t.start()
    if args.partitions > 0:
        # kill a worker mid-load: the serving layer must ride through
        time.sleep(0.1)
        backend.cluster.kill_partition(0)
        print("smoke: SIGKILLed partition 0 mid-load", flush=True)
    for t in threads:
        t.join()

    total = LoadReport()
    for report in reports:
        total.merge(report)
    print(
        f"smoke: client ledger {total.as_dict()}",
        flush=True,
    )
    if not total.balanced():
        failures.append(
            f"client ledger unbalanced: {total.terminal()} terminal "
            f"outcomes vs {total.offered} offered"
        )
    if total.completed == 0:
        failures.append("no op completed")
    if total.dropped:
        failures.append(f"{total.dropped} frames dropped (conn died)")

    # server-side ledger must balance class by class
    with ReproClient(args.host, server.port, "smoke-probe") as probe:
        health = probe.health()
        stats = probe.stats()
    server_counts = stats["server"].get("server", {})
    for klass in ("point", "scan"):
        offered = _dig(server_counts, "offered", klass)
        admitted = _dig(server_counts, "admitted", klass)
        rejected = sum(
            _dig(server_counts, "rejected", reason, klass)
            for reason in ("rate", "queue", "stopping")
        )
        shed_admission = _dig(server_counts, "shed", "admission", klass)
        terminal = sum(
            (
                _dig(server_counts, "completed", klass),
                _dig(server_counts, "failed", klass),
                _dig(server_counts, "shed", "dequeue", klass),
                _dig(server_counts, "shed", "backend", klass),
                _dig(server_counts, "shed", "stopping", klass),
            )
        )
        if offered != admitted + rejected + shed_admission:
            failures.append(
                f"{klass}: offered {offered} != admitted {admitted} "
                f"+ rejected {rejected} + shed@admission "
                f"{shed_admission}"
            )
        if admitted != terminal:
            failures.append(
                f"{klass}: admitted {admitted} != terminal {terminal}"
            )
    print(f"smoke: health {health['status']}", flush=True)

    if args.protocol_checks and args.partitions > 0:
        violations = [
            v
            for leg in backend.cluster.protocol_report().values()
            for v in leg
        ]
        if violations:
            failures.append(
                f"{len(violations)} hard protocol violations: "
                f"{violations[:3]}"
            )
        print(
            f"smoke: protocol violations {len(violations)}",
            flush=True,
        )

    server.stop()
    backend.shutdown()
    for failure in failures:
        print(f"smoke FAILED: {failure}", file=sys.stderr, flush=True)
    print(
        f"smoke: {'FAIL' if failures else 'PASS'} "
        f"({total.completed} completed, {total.retries} retried, "
        f"{total.deadline_exceeded} deadline)",
        flush=True,
    )
    return 1 if failures else 0


def _dig(tree: dict, *path) -> int:
    node = tree
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return 0
        node = node[part]
    return node if isinstance(node, int) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="network serving layer over a repro database",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--partitions",
        type=int,
        default=0,
        help="cluster backend with N partitions (0: embedded database)",
    )
    parser.add_argument("--data-dir", default=None)
    parser.add_argument(
        "--rpc-timeout",
        type=float,
        default=2.0,
        help="per-call partition RPC deadline (cluster backend)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client requests/sec (None: unlimited)",
    )
    parser.add_argument("--blackbox-dir", default=None)
    parser.add_argument(
        "--protocol-checks",
        action="store_true",
        help="attach the lockdep witness to every database",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke battery instead of serving",
    )
    parser.add_argument("--smoke-clients", type=int, default=4)
    parser.add_argument("--smoke-ops", type=int, default=150)
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args)
    return _serve(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
