"""The serving front end: sessions, admission, workers, accounting.

Request lifecycle (DESIGN.md §14)::

    accept -> hello -> [reader thread]
        classify -> rate limit -> deadline check -> queue offer
            full/over-rate/stopping -> RETRY frame (explicit shed)
            expired                 -> DEADLINE frame
            admitted                -> Ticket parked in class queue
    [worker pool per class]
        take -> deadline re-check (shed expired work *before* the
        descent) -> execute with remaining budget -> OK/ERROR/RETRY

Threading: one reader thread per connection, a fixed worker pool per
admission class, one accept thread.  Workers and the reader share the
connection's socket for responses, serialized by a per-connection send
lock.  Control verbs (ping/health/stats) are served inline on the
reader thread — an overloaded data path must never blind the operator.

Accounting is *exact*: every offered request lands in exactly one
terminal counter, and the class invariants::

    offered  == admitted + rejected.rate + rejected.queue
                + rejected.stopping + shed.admission
    admitted == completed + failed + shed.dequeue + shed.backend
                + shed.stopping

are asserted by the serving benchmark against both the server's and
the clients' independent ledgers.  Counters are the exact sharded
:class:`~repro.obs.metrics.Counter`, so the sums hold to the op.

A shed *burst* (many sheds within a short window) triggers a flight
recorder dump — the black box for the postmortem question "what was
the server doing when it started shedding?".
"""

from __future__ import annotations

import collections
import itertools
import os
import socket
import threading
import time

from repro.cluster.rpc import FrameChannel
from repro.errors import (
    ChannelClosedError,
    FrameCorruptionError,
    RetryLater,
    RpcTimeoutError,
    SessionError,
    best_effort,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.server import protocol
from repro.server.admission import AdmissionQueue, Ticket
from repro.server.ratelimit import RateLimiter

__all__ = ["DatabaseServer"]

#: seconds a worker blocks in ``take`` before re-checking stop state
_TAKE_POLL = 0.05

#: seconds ``stop()`` waits for queues to drain before shedding them
_DRAIN_GRACE = 2.0


class _Connection:
    """One client session: channel + send serialization + identity."""

    def __init__(
        self, channel: FrameChannel, session: int, peer: str
    ) -> None:
        self.channel = channel
        self.session = session
        self.peer = peer
        self.client_id = f"session-{session}"
        self.send_lock = threading.Lock()
        self.closed = False

    def send(self, envelope: tuple) -> bool:
        """Send ``envelope``; False when the client is gone."""
        with self.send_lock:
            if self.closed:
                return False
            try:
                self.channel.send(envelope)
                return True
            except (ChannelClosedError, RpcTimeoutError, OSError):
                self.closed = True
                return False

    def close(self) -> None:
        self.closed = True
        self.channel.close()


class DatabaseServer:
    """TCP front end over a serving backend (see module docstring).

    Parameters
    ----------
    backend:
        A :class:`~repro.server.backend.LocalBackend` or
        :class:`~repro.server.backend.ClusterBackend`.  The server
        does not own it: ``stop()`` leaves the backend running.
    point_capacity / scan_capacity:
        Admission queue bounds per class.
    point_workers / scan_workers:
        Executor threads per class.
    rate_limit / rate_burst:
        Per-client token bucket (requests/sec, burst); None disables.
    blackbox_dir:
        Where shed-burst flight recorder dumps land (None disables).
    shed_burst / shed_burst_window:
        Dump when ``shed_burst`` sheds occur within the window (s).
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        point_capacity: int = 64,
        scan_capacity: int = 16,
        point_workers: int = 4,
        scan_workers: int = 2,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        metrics_enabled: bool = True,
        blackbox_dir: str | None = None,
        shed_burst: int = 32,
        shed_burst_window: float = 1.0,
    ) -> None:
        self.backend = backend
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.recorder = FlightRecorder(capacity=1024)
        self.limiter = RateLimiter(rate_limit, rate_burst)
        self.queues: dict[str, AdmissionQueue] = {
            protocol.POINT: AdmissionQueue(
                protocol.POINT, point_capacity
            ),
            protocol.SCAN: AdmissionQueue(protocol.SCAN, scan_capacity),
        }
        self._workers_per_class = {
            protocol.POINT: point_workers,
            protocol.SCAN: scan_workers,
        }
        self.blackbox_dir = blackbox_dir
        self.shed_burst = shed_burst
        self.shed_burst_window = shed_burst_window
        self._shed_stamps: collections.deque[float] = collections.deque()
        self._shed_lock = threading.Lock()
        self._dumps = 0
        self._sessions = itertools.count(1)
        self._conns: list[_Connection] = []
        self._conns_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._stopping = False
        self._started_at = 0.0
        for klass, queue in self.queues.items():
            self.metrics.gauge(f"server.queue.{klass}", queue.snapshot)
        self.metrics.gauge("server.ratelimit", self.limiter.snapshot)
        self.metrics.gauge(
            "server.blackbox_dumps", lambda: self._dumps
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DatabaseServer":
        """Bind, listen, and spin up accept + worker threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._started_at = time.monotonic()
        accept = threading.Thread(
            target=self._accept_loop, name="srv-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for klass, count in self._workers_per_class.items():
            for i in range(count):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(klass,),
                    name=f"srv-{klass}-{i}",
                    daemon=True,
                )
                worker.start()
                self._threads.append(worker)
        return self

    def stop(self) -> None:
        """Graceful drain: reject new work, finish or shed the queued.

        Order matters: flip the stopping flag (readers start answering
        ``RETRY stopping``), close the listener, give the workers a
        grace period to drain the queues, then shed what remains with
        explicit frames — a stopping server still never drops work
        silently — and only then tear down the connections.
        """
        if self._stopping:
            return
        self._stopping = True
        if self._listener is not None:
            best_effort(self._listener.close, only=(OSError,))
        deadline = time.monotonic() + _DRAIN_GRACE
        while time.monotonic() < deadline and any(
            len(q) for q in self.queues.values()
        ):
            time.sleep(0.01)
        for queue in self.queues.values():
            queue.close()
        for klass, queue in self.queues.items():
            for ticket in queue.drain():
                self.metrics.counter(
                    f"server.shed.stopping.{klass}"
                ).inc()
                ticket.conn.send(
                    protocol.retry(ticket.req_id, 0.1, "stopping")
                )
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accept / session plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: stop() is in progress
            sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            conn = _Connection(
                FrameChannel(sock),
                next(self._sessions),
                f"{addr[0]}:{addr[1]}",
            )
            with self._conns_lock:
                self._conns.append(conn)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"srv-reader-{conn.session}",
                daemon=True,
            )
            reader.start()

    def _handshake(self, conn: _Connection) -> bool:
        try:
            frame = conn.channel.recv(timeout=5.0)
        except (
            ChannelClosedError,
            FrameCorruptionError,
            RpcTimeoutError,
        ):
            return False
        if (
            not isinstance(frame, tuple)
            or len(frame) != 3
            or frame[0] != protocol.HELLO
            or frame[1] != protocol.PROTOCOL_VERSION
        ):
            conn.send(
                protocol.error(
                    0, SessionError("expected hello handshake")
                )
            )
            return False
        conn.client_id = str(frame[2])
        return conn.send(protocol.hello_ack(conn.session))

    def _reader_loop(self, conn: _Connection) -> None:
        try:
            if not self._handshake(conn):
                return
            while not conn.closed:
                try:
                    frame = conn.channel.recv()
                except (ChannelClosedError, FrameCorruptionError):
                    return  # client gone or stream garbled: done
                self._dispatch(conn, frame)
        finally:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    # ------------------------------------------------------------------
    # admission pipeline (reader side)
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, frame: object) -> None:
        if not isinstance(frame, tuple) or len(frame) != 4:
            conn.send(
                protocol.error(
                    0, SessionError("malformed request envelope")
                )
            )
            return
        req_id, method, deadline, payload = frame
        try:
            klass = protocol.classify(method)
        except ValueError as exc:
            self.metrics.counter("server.protocol_errors").inc()
            conn.send(protocol.error(req_id, exc))
            return
        if klass == protocol.CONTROL:
            self._serve_control(conn, req_id, method)
            return
        self.metrics.counter(f"server.offered.{klass}").inc()
        if self._stopping:
            self.metrics.counter(
                f"server.rejected.stopping.{klass}"
            ).inc()
            conn.send(protocol.retry(req_id, 0.1, "stopping"))
            return
        ok, wait = self.limiter.check(conn.client_id)
        if not ok:
            self.metrics.counter(f"server.rejected.rate.{klass}").inc()
            self._note_shed(klass, "rate_limit", conn.client_id)
            conn.send(protocol.retry(req_id, wait, "rate_limit"))
            return
        ticket = Ticket(
            req_id=req_id,
            method=method,
            payload=payload,
            deadline=deadline,
            conn=conn,
            klass=klass,
        )
        if ticket.expired():
            # dead on arrival: the client's stamp expired in flight
            self.metrics.counter(f"server.shed.admission.{klass}").inc()
            self._note_shed(klass, "admission", conn.client_id)
            conn.send(
                protocol.deadline_exceeded(
                    req_id, "deadline expired before admission"
                )
            )
            return
        queue = self.queues[klass]
        if not queue.offer(ticket):
            self.metrics.counter(f"server.rejected.queue.{klass}").inc()
            self._note_shed(klass, "queue_full", conn.client_id)
            conn.send(
                protocol.retry(req_id, queue.retry_hint(), "queue_full")
            )
            return
        self.metrics.counter(f"server.admitted.{klass}").inc()

    # ------------------------------------------------------------------
    # execution (worker side)
    # ------------------------------------------------------------------
    def _worker_loop(self, klass: str) -> None:
        queue = self.queues[klass]
        latency = self.metrics.histogram(f"server.latency.{klass}")
        while True:
            ticket = queue.take(_TAKE_POLL)
            if ticket is None:
                if self._stopping:
                    return
                continue
            if ticket.expired():
                # the deadline re-check: shed queued-but-stale work
                # *before* spending a descent on it
                self.metrics.counter(
                    f"server.shed.dequeue.{klass}"
                ).inc()
                self._note_shed(klass, "dequeue", ticket.conn.client_id)
                ticket.conn.send(
                    protocol.deadline_exceeded(
                        ticket.req_id, "deadline expired in queue"
                    )
                )
                continue
            start = time.monotonic()
            try:
                result = self._execute(ticket)
            except RetryLater as exc:
                self.metrics.counter(
                    f"server.shed.backend.{klass}"
                ).inc()
                self._note_shed(
                    klass, exc.reason, ticket.conn.client_id
                )
                ticket.conn.send(
                    protocol.retry(
                        ticket.req_id, exc.retry_after, exc.reason
                    )
                )
            except Exception as exc:
                self.metrics.counter(f"server.failed.{klass}").inc()
                ticket.conn.send(protocol.error(ticket.req_id, exc))
            else:
                self.metrics.counter(f"server.completed.{klass}").inc()
                latency.record(time.monotonic() - start)
                ticket.conn.send(protocol.ok(ticket.req_id, result))

    def _execute(self, ticket: Ticket) -> object:
        budget = ticket.remaining()
        method, p = ticket.method, ticket.payload
        backend = self.backend
        if method == "put":
            return backend.put(p[0], p[1], p[2], timeout=budget)
        if method == "get":
            return backend.get(p[0], p[1], timeout=budget)
        if method == "delete":
            return backend.delete(p[0], p[1], p[2], timeout=budget)
        if method == "batch":
            return backend.batch(p[0], p[1], timeout=budget)
        if method == "multi_put":
            return backend.multi_put(p[0], p[1], timeout=budget)
        if method == "multi_get":
            return backend.multi_get(p[0], p[1], timeout=budget)
        if method == "multi_delete":
            return backend.multi_delete(p[0], p[1], timeout=budget)
        if method == "search":
            return backend.search(p[0], p[1], timeout=budget)
        raise ValueError(f"unroutable method {ticket.method!r}")

    # ------------------------------------------------------------------
    # control plane (served inline on the reader thread)
    # ------------------------------------------------------------------
    def _serve_control(
        self, conn: _Connection, req_id: int, method: str
    ) -> None:
        try:
            if method == "ping":
                conn.send(protocol.ok(req_id, "pong"))
            elif method == "health":
                conn.send(protocol.ok(req_id, self.health()))
            else:  # "stats" — classify() admits nothing else
                conn.send(protocol.ok(req_id, self.stats()))
        except Exception as exc:
            conn.send(protocol.error(req_id, exc))

    def health(self) -> dict:
        return {
            "status": "stopping" if self._stopping else "ok",
            "uptime": round(time.monotonic() - self._started_at, 3),
            "sessions": len(self._conns),
            "queues": {
                klass: queue.snapshot()
                for klass, queue in self.queues.items()
            },
            "ratelimit": self.limiter.snapshot(),
            "backend": self.backend.health(),
        }

    def stats(self) -> dict:
        """Server + backend metrics, plus their merged roll-up.

        For a cluster backend the merge folds the server's counters
        with the cluster front-end registry and the cross-partition
        aggregate — three heterogeneous namespaces,
        :func:`~repro.obs.metrics.merge_snapshots` handles the
        asymmetry by construction.
        """
        server_snap = self.metrics.snapshot()
        backend_snap = self.backend.snapshot()
        if "aggregate" in backend_snap and "cluster" in backend_snap:
            merged = merge_snapshots(
                [
                    server_snap,
                    backend_snap["cluster"],
                    backend_snap["aggregate"],
                ]
            )
        else:
            merged = merge_snapshots([server_snap, backend_snap])
        return {
            "server": server_snap,
            "backend": backend_snap,
            "merged": merged,
        }

    # ------------------------------------------------------------------
    # shed bookkeeping / black box
    # ------------------------------------------------------------------
    def _note_shed(
        self, klass: str, reason: str, client_id: str
    ) -> None:
        self.recorder.record(
            "server.shed", klass=klass, reason=reason, client=client_id
        )
        if self.blackbox_dir is None:
            return
        now = time.monotonic()
        dump_path = None
        with self._shed_lock:
            stamps = self._shed_stamps
            stamps.append(now)
            floor = now - self.shed_burst_window
            while stamps and stamps[0] < floor:
                stamps.popleft()
            if len(stamps) >= self.shed_burst:
                stamps.clear()  # one dump per burst, not per shed
                self._dumps += 1
                dump_path = os.path.join(
                    self.blackbox_dir,
                    f"server-shed-burst-{self._dumps}.jsonl",
                )
        if dump_path is not None:
            os.makedirs(self.blackbox_dir, exist_ok=True)
            self.recorder.dump(dump_path)
