"""The serving wire protocol: framed envelopes with deadlines.

The server speaks the same frame format as the cluster's partition
wire (:mod:`repro.cluster.rpc`): ``struct('!II')`` header carrying
payload length + CRC32, pickled message objects, strict req-id echo.
Reusing the framing means the serving layer inherits the torn-frame
and EOF detection the cluster already trusts.

Envelopes (one pickled tuple per frame):

* hello:     ``("hello", 1, client_id)`` — first client frame;
  the server answers ``("hello", 1, {"session": n})``.
* request:   ``(req_id, method, deadline, payload)`` — ``deadline``
  is an **absolute** ``time.time()`` stamp (or ``None``): relative
  budgets would drift while the request sits in an admission queue,
  which is exactly when the deadline matters most.
* response:  ``(req_id, status, payload)`` with ``status`` one of
  :data:`OK`, :data:`ERROR`, :data:`RETRY`, :data:`DEADLINE`.

``RETRY`` payloads are ``{"retry_after": seconds, "reason": str}`` —
the explicit-backpressure frame.  ``DEADLINE`` means the server shed
the request because its stamp expired before execution started.

Operation classes: every method maps to an admission class —
``"point"`` (routed single/multi key ops), ``"scan"`` (fan-out
searches, which hold workers far longer), or ``"control"``
(health/stats/ping, served inline so an overloaded data path never
blinds the operator).
"""

from __future__ import annotations

__all__ = [
    "CONTROL",
    "DEADLINE",
    "ERROR",
    "HELLO",
    "OK",
    "POINT",
    "PROTOCOL_VERSION",
    "RETRY",
    "SCAN",
    "classify",
    "deadline_exceeded",
    "error",
    "hello",
    "hello_ack",
    "ok",
    "request",
    "retry",
]

PROTOCOL_VERSION = 1

#: envelope type tag for the session handshake
HELLO = "hello"

#: response statuses
OK = "ok"
ERROR = "error"
RETRY = "retry"
DEADLINE = "deadline"

#: admission classes
POINT = "point"
SCAN = "scan"
CONTROL = "control"

_CLASS_OF = {
    "put": POINT,
    "get": POINT,
    "delete": POINT,
    "batch": POINT,
    "multi_put": POINT,
    "multi_get": POINT,
    "multi_delete": POINT,
    "search": SCAN,
    "ping": CONTROL,
    "health": CONTROL,
    "stats": CONTROL,
}


def classify(method: str) -> str:
    """Admission class for ``method``; unknown methods raise."""
    try:
        return _CLASS_OF[method]
    except KeyError:
        raise ValueError(f"unknown serving method {method!r}") from None


def hello(client_id: str) -> tuple:
    """Client-side handshake envelope."""
    return (HELLO, PROTOCOL_VERSION, client_id)


def hello_ack(session: int) -> tuple:
    """Server-side handshake acknowledgment."""
    return (HELLO, PROTOCOL_VERSION, {"session": session})


def request(
    req_id: int, method: str, deadline: float | None, payload: object
) -> tuple:
    """Request envelope (``deadline`` is absolute wall-clock or None)."""
    return (req_id, method, deadline, payload)


def ok(req_id: int, payload: object) -> tuple:
    return (req_id, OK, payload)


def error(req_id: int, exc: BaseException) -> tuple:
    return (req_id, ERROR, (type(exc).__name__, str(exc)))


def retry(req_id: int, retry_after: float, reason: str) -> tuple:
    return (req_id, RETRY, {"retry_after": retry_after, "reason": reason})


def deadline_exceeded(req_id: int, message: str) -> tuple:
    return (req_id, DEADLINE, message)
