"""Bounded admission queues: the shed-don't-collapse mechanism.

The classic overload failure is the *unbounded* queue: past
saturation, every accepted request waits behind an ever-growing
backlog, latency explodes for everyone, and goodput collapses because
the server spends its capacity on work whose callers have long given
up.  The fix is old and simple — bound the queue, reject at the door,
tell the client when to come back:

* :meth:`AdmissionQueue.offer` either accepts a :class:`Ticket` or
  returns ``False`` immediately (the server turns that into an
  explicit ``RETRY`` frame — never a silent drop).
* :meth:`AdmissionQueue.take` hands tickets to worker threads in FIFO
  order; the *worker* re-checks the ticket's deadline at dequeue, so
  a request that aged out while queued is shed before it wastes a
  tree descent.
* :meth:`AdmissionQueue.retry_hint` estimates how long a rejected
  client should back off: the queue's recent average wait scaled by
  how full it is.  The hint is advisory — honest congestion signal,
  not a promise.

One queue per operation class (point vs scan): scans hold a worker
for orders of magnitude longer than point ops, and a shared queue
would let a scan burst starve every point client behind it
(head-of-line blocking across classes).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["AdmissionQueue", "Ticket"]


@dataclass
class Ticket:
    """One admitted request, parked until a worker takes it."""

    req_id: int
    method: str
    payload: object
    #: absolute wall-clock deadline (``time.time()`` scale) or None
    deadline: float | None
    #: the connection to answer on (opaque to the queue)
    conn: object
    #: admission class name (metrics label)
    klass: str
    #: monotonic enqueue stamp, set by the queue
    enqueued_at: float = field(default=0.0)

    def expired(self, now: float | None = None) -> bool:
        """True when the wall-clock deadline has passed."""
        if self.deadline is None:
            return False
        return (time.time() if now is None else now) >= self.deadline

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds left until the deadline (None = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - (time.time() if now is None else now)


class AdmissionQueue:
    """Bounded FIFO of :class:`Ticket` with a congestion hint.

    Thread model: many reader threads ``offer``, a small worker pool
    ``take``\\ s.  All state lives behind one condition variable; the
    wait-time EMA is updated inside it, so the hint is consistent
    with the depth it is scaled by.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        *,
        min_hint: float = 0.005,
        max_hint: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("admission queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.min_hint = min_hint
        self.max_hint = max_hint
        self._items: deque[Ticket] = deque()
        self._cond = threading.Condition()
        self._closed = False
        #: EMA of queue wait (enqueue -> dequeue), seconds
        self._ema_wait = 0.0
        #: lifetime accepted / rejected-at-door counts
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def offer(self, ticket: Ticket) -> bool:
        """Accept ``ticket`` or refuse immediately (never blocks)."""
        with self._cond:
            if self._closed or len(self._items) >= self.capacity:
                self.rejected += 1
                return False
            ticket.enqueued_at = time.monotonic()
            self._items.append(ticket)
            self.accepted += 1
            self._cond.notify()
            return True

    def retry_hint(self) -> float:
        """Suggested client backoff, scaled by current congestion."""
        with self._cond:
            fill = len(self._items) / self.capacity
            hint = self._ema_wait * max(1.0, fill * self.capacity)
        return min(self.max_hint, max(self.min_hint, hint))

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def take(self, timeout: float = 0.1) -> Ticket | None:
        """Next ticket in FIFO order, or None on timeout/closed."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return None
            ticket = self._items.popleft()
            waited = time.monotonic() - ticket.enqueued_at
            # EMA with alpha=0.2: responsive to load shifts without
            # letting one slow dequeue dominate the hint
            self._ema_wait += 0.2 * (waited - self._ema_wait)
            return ticket

    def drain(self) -> "list[Ticket]":
        """Remove and return every queued ticket (shutdown path)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Refuse new offers and wake blocked takers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "depth": len(self._items),
                "capacity": self.capacity,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "ema_wait_ms": round(self._ema_wait * 1e3, 3),
            }
