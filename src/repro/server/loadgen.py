"""Load generation against a serving endpoint, with exact ledgers.

Two driving disciplines, because they measure different things:

* **Closed loop** (:func:`run_closed_loop`) — one outstanding request
  per client, next op sent when the previous resolves.  The offered
  rate self-throttles to the service rate, which is exactly what you
  want for measuring *saturation goodput* (how fast can the server
  go when nobody overloads it).
* **Open loop** (:func:`run_open_loop`) — requests are submitted on
  an externally fixed arrival schedule (e.g. the workload module's
  Poisson arrivals) regardless of completions, via
  :class:`~repro.server.client.PipelinedClient`.  This is the honest
  overload instrument: closed-loop clients cannot push a server past
  capacity, open-loop schedules can, and the shed machinery only
  shows itself past capacity.

Every request frame a generator sends lands in exactly one
:class:`LoadReport` bucket, mirroring the server's own terminal
counters; the serving benchmark cross-checks the two ledgers sum for
sum.  Latencies are recorded for completed ops only — shed ops are
accounted, not averaged into the latency story (that would reward
fast rejections with a better p99).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceededError,
    RemoteOpError,
    RetryLater,
    SessionError,
)
from repro.server.client import PipelinedClient, ReproClient

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """One generator's ledger: every sent frame in exactly one bucket."""

    #: request frames sent (retries count — each is a fresh frame)
    offered: int = 0
    completed: int = 0
    #: RETRY frames received, by server-stated reason
    retried: dict = field(default_factory=dict)
    #: DEADLINE frames (server shed expired work)
    deadline_exceeded: int = 0
    #: client-side expiries (no response within deadline + grace)
    timeouts: int = 0
    #: in flight when the connection died
    dropped: int = 0
    #: ERROR frames
    failed: int = 0
    #: seconds, completed ops only
    latencies: list = field(default_factory=list)

    def note_retry(self, reason: str) -> None:
        self.retried[reason] = self.retried.get(reason, 0) + 1

    @property
    def retries(self) -> int:
        return sum(self.retried.values())

    def terminal(self) -> int:
        """Frames accounted for; equals ``offered`` when balanced."""
        return (
            self.completed
            + self.retries
            + self.deadline_exceeded
            + self.timeouts
            + self.dropped
            + self.failed
        )

    def balanced(self) -> bool:
        return self.terminal() == self.offered

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[idx]

    def merge(self, other: "LoadReport") -> "LoadReport":
        self.offered += other.offered
        self.completed += other.completed
        for reason, n in other.retried.items():
            self.retried[reason] = self.retried.get(reason, 0) + n
        self.deadline_exceeded += other.deadline_exceeded
        self.timeouts += other.timeouts
        self.dropped += other.dropped
        self.failed += other.failed
        self.latencies.extend(other.latencies)
        return self

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "retried": dict(sorted(self.retried.items())),
            "deadline_exceeded": self.deadline_exceeded,
            "timeouts": self.timeouts,
            "dropped": self.dropped,
            "failed": self.failed,
            "balanced": self.balanced(),
        }


def run_closed_loop(
    host: str,
    port: int,
    ops,
    *,
    client_id: str,
    deadline: float | None = None,
    max_attempts: int = 10,
    rng=None,
    stop_at: float | None = None,
) -> LoadReport:
    """Drive ``ops`` one at a time, honoring retry hints.

    ``ops`` is an iterable of ``(method, payload)``.  Each logical op
    is attempted until a terminal outcome or ``max_attempts`` frames;
    every frame (including retries) is ledgered.  ``stop_at`` is an
    optional monotonic stamp after which remaining ops are skipped.
    """
    report = LoadReport()
    client = ReproClient(host, port, client_id)
    try:
        for method, payload in ops:
            if stop_at is not None and time.monotonic() >= stop_at:
                break
            for attempt in range(max_attempts):
                report.offered += 1
                start = time.monotonic()
                try:
                    client._call(method, payload, deadline)
                except RetryLater as exc:
                    report.note_retry(exc.reason)
                    if attempt == max_attempts - 1:
                        break
                    hint = min(0.5, max(1e-4, exc.retry_after))
                    if rng is not None:
                        hint *= 0.5 + 0.5 * rng.random()
                    time.sleep(hint)
                except DeadlineExceededError:
                    report.deadline_exceeded += 1
                    break
                except SessionError:
                    report.dropped += 1
                    return report  # poisoned: this client is done
                except RemoteOpError:
                    report.failed += 1
                    break
                else:
                    report.completed += 1
                    report.latencies.append(
                        time.monotonic() - start
                    )
                    break
    finally:
        client.close()
    return report


def run_open_loop(
    host: str,
    port: int,
    schedule,
    *,
    client_id: str,
    deadline: float | None = None,
    drain_timeout: float = 10.0,
) -> LoadReport:
    """Submit on a fixed arrival schedule; never wait for responses.

    ``schedule`` is an iterable of ``(offset_seconds, method,
    payload)`` with offsets relative to the call's start.  After the
    last submission the generator waits (bounded) for stragglers so
    every frame gets its outcome.
    """
    report = LoadReport()
    lock = threading.Lock()

    def outcome(result: dict) -> None:
        with lock:
            status = result["status"]
            if status == "ok":
                report.completed += 1
                report.latencies.append(result["latency"])
            elif status == "retry":
                report.note_retry(result["payload"]["reason"])
            elif status == "deadline":
                report.deadline_exceeded += 1
            elif status == "timeout":
                report.timeouts += 1
            elif status == "dropped":
                report.dropped += 1
            else:  # "error"
                report.failed += 1

    client = PipelinedClient(host, port, client_id)
    try:
        base = time.monotonic()
        for offset, method, payload in schedule:
            delay = base + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            report.offered += 1
            client.submit(method, payload, outcome, timeout=deadline)
        drain_until = time.monotonic() + drain_timeout
        while client.pending() and time.monotonic() < drain_until:
            time.sleep(0.01)
    finally:
        client.close()
    return report
