"""Per-client token buckets: fairness at the front door.

Admission queues bound the *total* backlog; they do nothing about one
client monopolizing it.  The token bucket adds the per-client bound:
each client drains tokens at its request rate and refills at a
configured sustained rate, with a burst allowance for the normal case
of batched arrivals.  A client that outruns its bucket gets a
``RETRY`` frame whose hint is the exact time until its next token —
deterministic, honest backpressure rather than a guessed sleep.

The limiter is keyed by the client id from the session handshake.
That id is self-reported, which is fine for the lab: the limiter's
job here is protecting well-behaved clients from an aggressive
*workload*, not authenticating adversaries.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["RateLimiter", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/sec, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> tuple[bool, float]:
        """Take ``n`` tokens if available.

        Returns ``(True, 0.0)`` on success, else ``(False, wait)``
        where ``wait`` is the seconds until ``n`` tokens will have
        accumulated — the retry hint.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return (True, 0.0)
            return (False, (n - self._tokens) / self.rate)

    def available(self) -> float:
        """Current token count (refilled to now)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            return self._tokens


class RateLimiter:
    """Per-client-id bucket map; ``rate=None`` disables limiting."""

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else (
            rate * 2 if rate is not None else None
        )
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def check(self, client_id: str, n: float = 1.0) -> tuple[bool, float]:
        """Charge ``client_id`` for ``n`` requests; see TokenBucket."""
        if self.rate is None:
            return (True, 0.0)
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
                self._buckets[client_id] = bucket
        return bucket.try_acquire(n)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "clients": len(self._buckets),
            }
