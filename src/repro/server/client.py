"""Serving clients: a sequential stub and a pipelined load driver.

:class:`ReproClient` is the ergonomic one-call-at-a-time stub: each
method stamps an absolute deadline from its ``timeout``, sends one
request frame and blocks for the matching response.  Backpressure and
deadline outcomes surface as typed exceptions
(:class:`~repro.errors.RetryLater`,
:class:`~repro.errors.DeadlineExceededError`) so callers — and
:func:`call_with_retry` — can honor the server's hints instead of
guessing.

:class:`PipelinedClient` exists for *open-loop* load: a sequential
client cannot offer load faster than the server answers (the offered
rate degenerates to the service rate — closed-loop coordination
omission).  The pipelined client decouples the two with a receiver
thread matching responses to requests by req-id, so the load
generator can submit on the arrival schedule regardless of how far
behind the server is.

Both clients poison themselves on a receive timeout: a late response
frame for an abandoned request would desynchronize the req/resp
pairing, exactly the argument behind the cluster channel's poisoning
rule.
"""

from __future__ import annotations

import itertools
import select
import socket
import threading
import time

from repro.cluster.rpc import FrameChannel
from repro.errors import (
    ChannelClosedError,
    DeadlineExceededError,
    RemoteOpError,
    RetryLater,
    RpcTimeoutError,
    SessionError,
)
from repro.server import protocol

__all__ = ["PipelinedClient", "ReproClient", "call_with_retry"]


def _connect(
    host: str, port: int, connect_timeout: float
) -> FrameChannel:
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return FrameChannel(sock)


def _raise_for_status(status: str, payload: object) -> object:
    if status == protocol.OK:
        return payload
    if status == protocol.RETRY:
        raise RetryLater(payload["retry_after"], payload["reason"])
    if status == protocol.DEADLINE:
        raise DeadlineExceededError(payload)
    kind, message = payload  # protocol.ERROR
    raise RemoteOpError(kind, message)


class ReproClient:
    """Sequential request/response stub over one session."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        *,
        connect_timeout: float = 5.0,
        grace: float = 1.0,
    ) -> None:
        self.client_id = client_id or f"client-{id(self):x}"
        #: extra seconds past the deadline to wait for the server's
        #: own shed/deadline frame before declaring the call dead
        self.grace = grace
        self._channel = _connect(host, port, connect_timeout)
        self._req_ids = itertools.count(1)
        self._poisoned = False
        self._channel.send(protocol.hello(self.client_id))
        ack = self._channel.recv(timeout=connect_timeout)
        if not (
            isinstance(ack, tuple) and ack[0] == protocol.HELLO
        ):  # pragma: no cover - server always acks or closes
            raise SessionError(f"bad handshake ack: {ack!r}")
        self.session = ack[2]["session"]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _call(
        self, method: str, payload: object, timeout: float | None
    ) -> object:
        if self._poisoned:
            raise SessionError(
                "client poisoned by an earlier timeout; reconnect"
            )
        deadline = None if timeout is None else time.time() + timeout
        req_id = next(self._req_ids)
        wait = None if timeout is None else timeout + self.grace
        try:
            self._channel.send(
                protocol.request(req_id, method, deadline, payload)
            )
            got_id, status, body = self._channel.recv(timeout=wait)
        except RpcTimeoutError as exc:
            self._poisoned = True
            self._channel.close()
            raise DeadlineExceededError(
                f"{method} got no response within "
                f"{timeout:.3f}s (+{self.grace:.3f}s grace)"
            ) from exc
        if got_id != req_id:  # pragma: no cover - strict pairing
            self._poisoned = True
            self._channel.close()
            raise SessionError(
                f"response {got_id} != request {req_id}"
            )
        return _raise_for_status(status, body)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def ping(self, timeout: float | None = 5.0) -> str:
        return self._call("ping", None, timeout)

    def health(self, timeout: float | None = 5.0) -> dict:
        return self._call("health", None, timeout)

    def stats(self, timeout: float | None = 5.0) -> dict:
        return self._call("stats", None, timeout)

    def put(self, tree, key, rid, timeout=None) -> dict:
        return self._call("put", (tree, key, rid), timeout)

    def get(self, tree, key, timeout=None) -> list:
        return self._call("get", (tree, key), timeout)

    def delete(self, tree, key, rid, timeout=None) -> dict:
        return self._call("delete", (tree, key, rid), timeout)

    def batch(self, tree, ops, timeout=None) -> dict:
        return self._call("batch", (tree, ops), timeout)

    def multi_put(self, tree, pairs, timeout=None) -> int:
        return self._call("multi_put", (tree, list(pairs)), timeout)

    def multi_get(self, tree, keys, timeout=None) -> dict:
        return self._call("multi_get", (tree, list(keys)), timeout)

    def multi_delete(self, tree, pairs, timeout=None) -> int:
        return self._call("multi_delete", (tree, list(pairs)), timeout)

    def search(self, tree, query, timeout=None) -> list:
        return self._call("search", (tree, query), timeout)

    def close(self) -> None:
        self._channel.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def call_with_retry(
    fn,
    *,
    attempts: int = 8,
    max_backoff: float = 0.5,
    rng=None,
    sleep=time.sleep,
):
    """Run ``fn`` honoring ``RetryLater`` hints with jitter.

    The server's ``retry_after`` is the base; full jitter (uniform in
    ``[hint/2, hint]``) decorrelates the retry herd the same way the
    cluster driver's backoff does.  The last attempt's ``RetryLater``
    propagates — backpressure is the caller's problem eventually.
    """
    for attempt in range(attempts):
        try:
            return fn()
        except RetryLater as exc:
            if attempt == attempts - 1:
                raise
            hint = min(max_backoff, max(1e-4, exc.retry_after))
            if rng is not None:
                hint *= 0.5 + 0.5 * rng.random()
            sleep(hint)
    raise AssertionError("unreachable")  # pragma: no cover


class PipelinedClient:
    """Many-in-flight client for open-loop load generation.

    ``submit`` sends immediately and returns; the receiver thread
    matches responses by req-id and invokes ``callback(outcome)``
    with an outcome dict::

        {"req_id", "method", "status", "payload", "latency"}

    ``status`` is the wire status, or ``"timeout"`` for requests the
    reaper expired client-side (server never answered within deadline
    + grace), or ``"dropped"`` for requests in flight when the
    connection died.  Every submitted request gets exactly one
    outcome — the load generator's ledger depends on it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        *,
        connect_timeout: float = 5.0,
        grace: float = 1.0,
    ) -> None:
        self.client_id = client_id or f"pipelined-{id(self):x}"
        self.grace = grace
        self._channel = _connect(host, port, connect_timeout)
        self._req_ids = itertools.count(1)
        self._send_lock = threading.Lock()
        #: req_id -> (method, callback, sent_at, expiry or None)
        self._pending: dict[int, tuple] = {}
        self._pending_lock = threading.Lock()
        self._closed = False
        self._channel.send(protocol.hello(self.client_id))
        ack = self._channel.recv(timeout=connect_timeout)
        if not (
            isinstance(ack, tuple) and ack[0] == protocol.HELLO
        ):  # pragma: no cover - server always acks or closes
            raise SessionError(f"bad handshake ack: {ack!r}")
        self.session = ack[2]["session"]
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"cli-recv-{self.session}",
            daemon=True,
        )
        self._receiver.start()

    def submit(
        self,
        method: str,
        payload: object,
        callback,
        timeout: float | None = None,
    ) -> int:
        """Send one request; the callback fires from the receiver."""
        if self._closed:
            raise SessionError("client closed")
        deadline = None if timeout is None else time.time() + timeout
        req_id = next(self._req_ids)
        now = time.monotonic()
        expiry = None if timeout is None else now + timeout + self.grace
        with self._pending_lock:
            self._pending[req_id] = (method, callback, now, expiry)
        try:
            with self._send_lock:
                self._channel.send(
                    protocol.request(req_id, method, deadline, payload)
                )
        except (ChannelClosedError, RpcTimeoutError, OSError):
            self._finish(req_id, "dropped", None)
        return req_id

    def _finish(
        self, req_id: int, status: str, payload: object
    ) -> None:
        with self._pending_lock:
            entry = self._pending.pop(req_id, None)
        if entry is None:
            return  # reaped or already finished
        method, callback, sent_at, _expiry = entry
        callback(
            {
                "req_id": req_id,
                "method": method,
                "status": status,
                "payload": payload,
                "latency": time.monotonic() - sent_at,
            }
        )

    def _receive_loop(self) -> None:
        # Poll with select, then a *blocking* recv: a timeout inside
        # recv could expire mid-frame and poison the stream, while a
        # select wakeup guarantees at least the header has started —
        # the rest of the frame follows at once on a local stream.
        while not self._closed:
            try:
                ready, _, _ = select.select(
                    [self._channel.fileno()], [], [], 0.1
                )
                if not ready:
                    self._reap()
                    continue
                frame = self._channel.recv()
            except (ChannelClosedError, OSError, ValueError):
                break
            req_id, status, payload = frame
            self._finish(req_id, status, payload)
        # connection gone: every in-flight request gets its outcome
        with self._pending_lock:
            leftover = list(self._pending)
        for req_id in leftover:
            self._finish(req_id, "dropped", None)

    def _reap(self) -> None:
        """Expire requests whose deadline + grace passed unanswered."""
        now = time.monotonic()
        with self._pending_lock:
            expired = [
                rid
                for rid, (_m, _cb, _s, expiry) in self._pending.items()
                if expiry is not None and now >= expiry
            ]
        for rid in expired:
            self._finish(rid, "timeout", None)

    def pending(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def close(self) -> None:
        self._closed = True
        self._channel.close()
        self._receiver.join(timeout=2.0)

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
