"""History-recorded concurrency scenarios with an oracle verdict.

:func:`run_scenario` executes a seeded :class:`ScalarWorkload` stream
against a live :class:`~repro.database.Database` from several worker
threads, records every completed operation's invocation/response
interval into a :class:`~repro.obs.history.HistoryRecorder`, and then
checks the whole concurrent history mechanically — per-element
linearizability plus read-committed conformance — so a scenario run
ends in a pass/fail correctness verdict instead of only a throughput
number.

Each generated operation runs as its own transaction (invocation
stamped before ``begin``, response after ``commit`` returns, which
brackets the commit-time linearization point), and operations of
aborted transactions are never recorded: they had no effect, so they
have no place in the history.  Writes are partitioned by rid — the
insert and delete of one element always run on the same worker, in
program order — which keeps every generated stream executable under
concurrency; searches round-robin across workers.

CLI (the CI ``oracle-smoke`` job)::

    PYTHONPATH=src python -m repro.workload.scenario \
        --ops 400 --threads 4 --seed 3 --check
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from time import perf_counter, perf_counter_ns

from repro.database import Database
from repro.errors import KeyNotFoundError, best_effort
from repro.obs.history import (
    HistoryRecorder,
    OracleReport,
    check_linearizability,
    check_read_committed,
)
from repro.txn.transaction import IsolationLevel
from repro.workload.generator import MixSpec, Op, ScalarWorkload

__all__ = ["ScenarioResult", "partition_by_rid", "run_scenario"]


def covers(query: object, key: object) -> bool:
    """Whether a range query's predicate includes ``key``.

    The oracle's domain predicate for scalar workloads: B-tree
    ``Interval`` queries expose ``contains``.
    """
    return bool(query.contains(key))  # type: ignore[attr-defined]


def partition_by_rid(ops: list[Op], workers: int) -> list[list[Op]]:
    """Partition an op stream so each element's writes stay ordered.

    Insert and delete of the same rid land on the same worker (in
    program order — a delete can never race ahead of its insert);
    searches are dealt round-robin.  Deterministic for a given stream.
    """
    buckets: list[list[Op]] = [[] for _ in range(workers)]
    search_turn = 0
    for op in ops:
        if op.kind in ("insert", "delete"):
            idx = _stable_bucket(op.rid, workers)
        else:
            idx = search_turn % workers
            search_turn += 1
        buckets[idx].append(op)
    return buckets


def _stable_bucket(rid: object, workers: int) -> int:
    """Process-independent bucket index (``hash()`` is randomized)."""
    text = str(rid)
    if text[:1] == "r" and text[1:].isdigit():
        return int(text[1:]) % workers
    return zlib.crc32(text.encode()) % workers


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    seed: int = 0
    threads: int = 0
    ops_run: int = 0
    #: operations abandoned after exhausting retries (not recorded)
    dropped: int = 0
    elapsed: float = 0.0
    errors: list[str] = field(default_factory=list)
    history: HistoryRecorder = field(default_factory=HistoryRecorder)
    linearizability: OracleReport = field(default_factory=OracleReport)
    read_committed: OracleReport = field(
        default_factory=lambda: OracleReport(mode="read-committed")
    )
    db: Database | None = None

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and self.linearizability.ok
            and self.read_committed.ok
        )


def run_scenario(
    *,
    seed: int = 0,
    ops: int = 200,
    threads: int = 4,
    preload: int = 32,
    key_space: int = 512,
    mix: MixSpec | None = None,
    selectivity: float = 0.05,
    isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ,
    db: Database | None = None,
    tree=None,
    op_tracing: bool = False,
    attempts: int = 10,
) -> ScenarioResult:
    """Run one seeded, history-checked concurrency scenario.

    ``db``/``tree`` may be supplied to run against a prepared assembly
    (the oracle self-test injects a deliberately broken tree wrapper
    this way); by default a fresh database and B-tree are built.
    """
    from repro.ext.btree import BTreeExtension

    if db is None:
        db = Database(
            page_capacity=16,
            pool_capacity=128,
            lock_timeout=10.0,
            op_tracing=op_tracing,
        )
    if tree is None:
        tree = db.create_tree("scenario", BTreeExtension())

    try:
        return _run_scenario_body(
            db=db, tree=tree, seed=seed, ops=ops, threads=threads,
            preload=preload, key_space=key_space, mix=mix,
            selectivity=selectivity, isolation=isolation,
            attempts=attempts,
        )
    except Exception:
        # Unhandled failure: ship the black box before propagating.
        _dump_blackbox(db, seed)
        raise


def _dump_blackbox(db: Database, seed: int) -> str | None:
    """Dump the flight recorder for a crashed scenario, best effort."""
    if db.flightrec is None:
        return None
    import os
    import sys
    import tempfile

    path = os.path.join(
        tempfile.gettempdir(), f"scenario-blackbox-seed-{seed}.jsonl"
    )
    try:
        db.flightrec.dump(path)
    except OSError:
        return None
    print(f"scenario blackbox: {path}", file=sys.stderr)
    return path


def _run_scenario_body(
    *,
    db: Database,
    tree,
    seed: int,
    ops: int,
    threads: int,
    preload: int,
    key_space: int,
    mix: MixSpec | None,
    selectivity: float,
    isolation: IsolationLevel,
    attempts: int,
) -> ScenarioResult:
    # deferred: repro.harness.driver itself imports repro.workload
    from repro.harness.driver import run_with_retry

    result = ScenarioResult(seed=seed, threads=threads, db=db)
    history = result.history
    workload = ScalarWorkload(
        seed,
        mix or MixSpec(insert=0.4, search=0.4, delete=0.2),
        key_space=key_space,
        selectivity=selectivity,
    )

    # Preload inside one transaction; the records still enter the
    # history (invoked before begin, responded after commit), so the
    # oracle knows these elements exist.
    if preload > 0:
        inv = perf_counter_ns()
        txn = db.begin(isolation)
        preloaded = workload.preload(preload)
        for op in preloaded:
            tree.insert(txn, op.key, op.rid)
        db.commit(txn)
        resp = perf_counter_ns()
        for op in preloaded:
            history.add(
                "insert", inv_ns=inv, resp_ns=resp,
                key=op.key, rid=op.rid, result=True,
            )

    stream = list(workload.ops(ops))
    buckets = partition_by_rid(stream, threads)
    errors_lock = threading.Lock()

    def run_op(op: Op) -> None:
        def attempt() -> None:
            inv = perf_counter_ns()
            txn = db.begin(isolation)
            try:
                if op.kind == "insert":
                    tree.insert(txn, op.key, op.rid)
                    outcome: object = True
                elif op.kind == "delete":
                    try:
                        tree.delete(txn, op.key, op.rid)
                        outcome = True
                    except KeyNotFoundError:
                        outcome = False
                else:
                    found = tree.search(txn, op.query)
                    outcome = [rid for _key, rid in found]
                db.commit(txn)
            except BaseException:
                best_effort(db.rollback, txn)
                raise
            resp = perf_counter_ns()
            history.add(
                op.kind, inv_ns=inv, resp_ns=resp,
                key=op.key, rid=op.rid, query=op.query, result=outcome,
            )

        try:
            run_with_retry(attempt, attempts=attempts)
        except Exception as exc:
            with errors_lock:
                result.dropped += 1
                result.errors.append(f"{op.kind} {op.rid!r}: {exc!r}")
            if db.flightrec is not None:
                db.flightrec.record(
                    "scenario.op_dropped", kind=op.kind, error=repr(exc)
                )

    def worker(bucket: list[Op]) -> None:
        for op in bucket:
            run_op(op)

    t0 = perf_counter()
    pool = [
        threading.Thread(target=worker, args=(bucket,), daemon=True)
        for bucket in buckets
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    result.elapsed = perf_counter() - t0
    result.ops_run = len(history)

    recorded = history.ops()
    result.linearizability = check_linearizability(recorded, covers)
    result.read_committed = check_read_committed(recorded, covers)
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI entry for the CI ``oracle-smoke`` job."""
    import argparse

    parser = argparse.ArgumentParser(
        description="history-recorded concurrency scenario + "
        "linearizability oracle"
    )
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--preload", type=int, default=32)
    parser.add_argument("--key-space", type=int, default=512)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the oracle flags the history",
    )
    parser.add_argument(
        "--op-tracing",
        action="store_true",
        help="run with per-op span attribution enabled",
    )
    parser.add_argument(
        "--export",
        default=None,
        help="write the recorded history to this JSONL path",
    )
    args = parser.parse_args(argv)

    result = run_scenario(
        seed=args.seed,
        ops=args.ops,
        threads=args.threads,
        preload=args.preload,
        key_space=args.key_space,
        op_tracing=args.op_tracing,
    )

    print(
        f"scenario seed={result.seed} threads={result.threads}: "
        f"{result.ops_run} ops in {result.elapsed:.2f}s "
        f"({result.ops_run / result.elapsed:.0f} ops/s), "
        f"{result.dropped} dropped"
    )
    print(str(result.linearizability))
    print(str(result.read_committed))
    if args.export:
        print(f"history: {result.history.export_jsonl(args.export)}")
    for err in result.errors:
        print(f"error: {err}")
    if args.check and not result.ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
