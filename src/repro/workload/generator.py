"""Deterministic workload generators for the benchmark harness.

All generators are seeded and pure, so every benchmark run is exactly
reproducible.  Three key domains matching the three shipped extensions:

* ordered scalar keys (B-tree) with uniform / Zipfian / clustered
  distributions and range queries,
* 2-D rectangles (R-tree) with uniform and clustered placement,
* element sets (RD-tree) drawn from a vocabulary with Zipfian element
  popularity.

Operation mixes produce ``Op`` streams the driver executes verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.ext.btree import Interval
from repro.ext.rtree import Rect


@dataclass(frozen=True)
class Op:
    """One operation in a generated workload."""

    kind: str  # "insert" | "delete" | "search" | "multi_put" | "multi_get" | "multi_delete"
    key: object = None
    rid: object = None
    query: object = None
    #: (key, rid) batch for multi_put / multi_delete
    pairs: tuple = ()
    #: key batch for multi_get
    keys: tuple = ()


# ---------------------------------------------------------------------------
# scalar keys
# ---------------------------------------------------------------------------


class ScalarKeys:
    """Seeded scalar-key source over ``[0, key_space)``."""

    def __init__(
        self,
        seed: int,
        key_space: int = 1_000_000,
        distribution: str = "uniform",
        zipf_s: float = 1.2,
        clusters: int = 16,
    ) -> None:
        self._rng = random.Random(seed)
        self.key_space = key_space
        self.distribution = distribution
        self._zipf_s = zipf_s
        self._clusters = clusters
        if distribution not in ("uniform", "zipf", "clustered"):
            raise ValueError(f"unknown distribution {distribution!r}")
        if distribution == "zipf":
            # Precompute a small Zipf CDF over rank buckets; keys inside
            # a bucket are uniform, which is plenty for index skew.
            weights = [1.0 / (rank**zipf_s) for rank in range(1, 1025)]
            total = sum(weights)
            acc, self._cdf = 0.0, []
            for w in weights:
                acc += w / total
                self._cdf.append(acc)

    def next_key(self) -> int:
        """Draw the next key from the configured distribution."""
        if self.distribution == "uniform":
            return self._rng.randrange(self.key_space)
        if self.distribution == "clustered":
            cluster = self._rng.randrange(self._clusters)
            width = self.key_space // self._clusters
            return cluster * width + int(
                abs(self._rng.gauss(0, width / 8)) % width
            )
        # zipf: pick a rank bucket by CDF, then a key within it
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        bucket_width = max(1, self.key_space // len(self._cdf))
        return lo * bucket_width + self._rng.randrange(bucket_width)

    def range_query(self, selectivity: float = 0.01) -> Interval:
        """A random interval covering ``selectivity`` of the key space."""
        width = max(1, int(self.key_space * selectivity))
        lo = self._rng.randrange(max(1, self.key_space - width))
        return Interval(lo, lo + width)


class PartitionRoutedKeys:
    """Scalar keys with *partition-aware* placement skew.

    Wraps a cluster :class:`~repro.cluster.router.Router` so workloads
    can control which partition each key lands on, independently of the
    key-value distribution:

    * ``routing="uniform"`` — every partition receives the same share
      of traffic (the balanced baseline),
    * ``routing="zipf"`` — partition popularity is Zipf-skewed
      (partition 0 hottest), making hot-partition imbalance a
      *measurable input* instead of an accident of hashing.

    Keys are drawn from the underlying uniform key space and
    rejection-sampled until the router places them on the drawn target
    partition — so the stream stays deterministic (seeded) and the
    router stays the single source of placement truth.
    """

    def __init__(
        self,
        seed: int,
        router,
        key_space: int = 1_000_000,
        routing: str = "uniform",
        zipf_s: float = 1.2,
        max_rejects: int = 10_000,
    ) -> None:
        if routing not in ("uniform", "zipf"):
            raise ValueError(f"unknown routing {routing!r}")
        self._rng = random.Random(seed)
        self.router = router
        self.key_space = key_space
        self.routing = routing
        self._max_rejects = max_rejects
        weights = [
            1.0 / (rank**zipf_s) for rank in range(1, router.partitions + 1)
        ]
        total = sum(weights)
        self._weights = [w / total for w in weights]

    def next_partition(self) -> int:
        """Draw the next *target* partition from the routing skew."""
        if self.routing == "uniform":
            return self._rng.randrange(self.router.partitions)
        u = self._rng.random()
        acc = 0.0
        for p, w in enumerate(self._weights):
            acc += w
            if u < acc:
                return p
        return self.router.partitions - 1

    def next_key(self) -> int:
        """Draw a key owned by the next target partition."""
        target = self.next_partition()
        for _ in range(self._max_rejects):
            key = self._rng.randrange(self.key_space)
            if self.router.partition_of(key) == target:
                return key
        raise ValueError(  # pragma: no cover - needs a degenerate router
            f"no key for partition {target} in {self._max_rejects} draws"
        )

    def range_query(self, selectivity: float = 0.01) -> Interval:
        """A random interval covering ``selectivity`` of the key space."""
        width = max(1, int(self.key_space * selectivity))
        lo = self._rng.randrange(max(1, self.key_space - width))
        return Interval(lo, lo + width)


def partition_histogram(ops: "Sequence[Op]", router) -> list[int]:
    """Per-partition routed-key counts for an op stream.

    Counts every routed key, including the members of batched ops
    (``pairs`` / ``keys``); searches route nowhere (they scatter) and
    are not counted.  The benchmark uses this to report imbalance —
    ``max/mean`` of the returned histogram — under uniform vs
    Zipf-skewed routing.
    """
    counts = [0] * router.partitions
    for op in ops:
        if op.key is not None:
            counts[router.partition_of(op.key)] += 1
        for key, _rid in op.pairs:
            counts[router.partition_of(key)] += 1
        for key in op.keys:
            counts[router.partition_of(key)] += 1
    return counts


# ---------------------------------------------------------------------------
# rectangles
# ---------------------------------------------------------------------------


class RectKeys:
    """Seeded rectangle source over the unit square."""

    def __init__(
        self,
        seed: int,
        extent: float = 0.01,
        distribution: str = "uniform",
        clusters: int = 12,
    ) -> None:
        self._rng = random.Random(seed)
        self.extent = extent
        self.distribution = distribution
        self._centers = [
            (self._rng.random(), self._rng.random()) for _ in range(clusters)
        ]

    def next_key(self) -> Rect:
        """Draw the next key from the configured distribution."""
        if self.distribution == "clustered":
            cx, cy = self._rng.choice(self._centers)
            x = min(max(self._rng.gauss(cx, 0.03), 0.0), 1.0)
            y = min(max(self._rng.gauss(cy, 0.03), 0.0), 1.0)
        else:
            x, y = self._rng.random(), self._rng.random()
        w = self._rng.random() * self.extent
        h = self._rng.random() * self.extent
        return Rect(x, y, min(x + w, 1.0), min(y + h, 1.0))

    def window_query(self, selectivity: float = 0.01) -> Rect:
        """A random window covering ``selectivity`` of the unit square."""
        side = selectivity**0.5
        x = self._rng.random() * (1.0 - side)
        y = self._rng.random() * (1.0 - side)
        return Rect(x, y, x + side, y + side)


# ---------------------------------------------------------------------------
# sets
# ---------------------------------------------------------------------------


class SetKeys:
    """Seeded set-valued key source (Zipfian element popularity)."""

    def __init__(
        self,
        seed: int,
        vocabulary: int = 500,
        set_size: int = 5,
        zipf_s: float = 1.1,
    ) -> None:
        self._rng = random.Random(seed)
        self.vocabulary = vocabulary
        self.set_size = set_size
        weights = [1.0 / (rank**zipf_s) for rank in range(1, vocabulary + 1)]
        self._population = list(range(vocabulary))
        self._weights = weights

    def next_key(self) -> frozenset:
        """Draw the next key from the configured distribution."""
        size = max(1, int(self._rng.gauss(self.set_size, 1)))
        return frozenset(
            self._rng.choices(self._population, self._weights, k=size)
        )

    def overlap_query(self, probe_size: int = 2) -> frozenset:
        """A random probe set for overlap queries."""
        return frozenset(
            self._rng.choices(self._population, self._weights, k=probe_size)
        )


# ---------------------------------------------------------------------------
# operation mixes
# ---------------------------------------------------------------------------


@dataclass
class MixSpec:
    """Fractions of each operation kind (must sum to 1).

    The ``multi_*`` fractions emit *batched* operations — each op
    carries a whole key batch and counts as one drawn operation.
    """

    insert: float = 0.5
    search: float = 0.5
    delete: float = 0.0
    multi_put: float = 0.0
    multi_get: float = 0.0
    multi_delete: float = 0.0

    def __post_init__(self) -> None:
        total = (
            self.insert
            + self.search
            + self.delete
            + self.multi_put
            + self.multi_get
            + self.multi_delete
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix fractions sum to {total}, expected 1")


class ScalarWorkload:
    """A reproducible stream of operations over scalar keys.

    Deletions target previously inserted pairs, so a generated stream is
    always executable; rids are unique across the stream.
    """

    def __init__(
        self,
        seed: int,
        mix: MixSpec | None = None,
        key_space: int = 1_000_000,
        distribution: str = "uniform",
        selectivity: float = 0.005,
        batch_size: int = 16,
        key_source=None,
    ) -> None:
        #: ``key_source`` overrides the default :class:`ScalarKeys` —
        #: pass a :class:`PartitionRoutedKeys` to give the stream
        #: partition-aware placement skew
        self.keys = key_source or ScalarKeys(seed, key_space, distribution)
        self._rng = random.Random(seed ^ 0x5EED)
        self.mix = mix or MixSpec()
        self.selectivity = selectivity
        self.batch_size = batch_size
        self._live: list[tuple[int, str]] = []
        self._counter = 0

    def ops(self, count: int) -> Iterator[Op]:
        """A finite stream of ``count`` operations."""
        for _ in range(count):
            yield self.next_op()

    def _fresh_pairs(self, count: int) -> list[tuple[int, str]]:
        pairs = []
        for _ in range(count):
            key = self.keys.next_key()
            self._counter += 1
            rid = f"r{self._counter}"
            self._live.append((key, rid))
            pairs.append((key, rid))
        return pairs

    def next_op(self) -> Op:
        """Draw the next operation of the mix."""
        mix = self.mix
        u = self._rng.random()
        if u < mix.insert or not self._live:
            (pair,) = self._fresh_pairs(1)
            return Op("insert", key=pair[0], rid=pair[1])
        u -= mix.insert
        if u < mix.delete:
            idx = self._rng.randrange(len(self._live))
            key, rid = self._live.pop(idx)
            return Op("delete", key=key, rid=rid)
        u -= mix.delete
        if u < mix.multi_put:
            return Op(
                "multi_put", pairs=tuple(self._fresh_pairs(self.batch_size))
            )
        u -= mix.multi_put
        if u < mix.multi_get:
            count = min(self.batch_size, len(self._live))
            sample = self._rng.sample(self._live, count)
            return Op("multi_get", keys=tuple(key for key, _ in sample))
        u -= mix.multi_get
        if u < mix.multi_delete:
            count = min(self.batch_size, len(self._live))
            pairs = []
            for _ in range(count):
                idx = self._rng.randrange(len(self._live))
                pairs.append(self._live.pop(idx))
            return Op("multi_delete", pairs=tuple(pairs))
        return Op("search", query=self.keys.range_query(self.selectivity))

    def preload(self, count: int) -> list[Op]:
        """Pure-insert prefix used to build the initial tree."""
        out = []
        for _ in range(count):
            key = self.keys.next_key()
            self._counter += 1
            rid = f"r{self._counter}"
            self._live.append((key, rid))
            out.append(Op("insert", key=key, rid=rid))
        return out


class RectWorkload:
    """A reproducible stream of operations over rectangles."""

    def __init__(
        self,
        seed: int,
        mix: MixSpec | None = None,
        distribution: str = "uniform",
        selectivity: float = 0.01,
    ) -> None:
        self.keys = RectKeys(seed, distribution=distribution)
        self._rng = random.Random(seed ^ 0x5EED)
        self.mix = mix or MixSpec()
        self.selectivity = selectivity
        self._live: list[tuple[Rect, str]] = []
        self._counter = 0

    def next_op(self) -> Op:
        """Draw the next operation of the mix."""
        u = self._rng.random()
        if u < self.mix.insert or not self._live:
            key = self.keys.next_key()
            self._counter += 1
            rid = f"r{self._counter}"
            self._live.append((key, rid))
            return Op("insert", key=key, rid=rid)
        if u < self.mix.insert + self.mix.delete:
            idx = self._rng.randrange(len(self._live))
            key, rid = self._live.pop(idx)
            return Op("delete", key=key, rid=rid)
        return Op(
            "search", query=self.keys.window_query(self.selectivity)
        )

    def ops(self, count: int) -> Iterator[Op]:
        """A finite stream of ``count`` operations."""
        for _ in range(count):
            yield self.next_op()

    def preload(self, count: int) -> list[Op]:
        """Pure-insert prefix used to build the initial tree."""
        out = []
        for _ in range(count):
            key = self.keys.next_key()
            self._counter += 1
            rid = f"r{self._counter}"
            self._live.append((key, rid))
            out.append(Op("insert", key=key, rid=rid))
        return out


def partition_ops(
    ops: Sequence[Op], workers: int
) -> list[list[Op]]:
    """Round-robin an op stream across workers (stable, deterministic)."""
    buckets: list[list[Op]] = [[] for _ in range(workers)]
    for i, op in enumerate(ops):
        buckets[i % workers].append(op)
    return buckets


class PoissonArrivals:
    """Open-loop arrival schedule: Poisson process at ``rate`` ops/sec.

    A closed-loop client's offered rate degenerates to the server's
    service rate (it waits for each response before sending the next),
    so it can never push a server past saturation.  Driving overload
    honestly requires an *open-loop* schedule fixed in advance:
    exponential inter-arrival gaps with mean ``1/rate``, which is a
    Poisson process — the standard memoryless model of independent
    client arrivals.

    The schedule is fully determined by ``(rate, duration, seed)``:
    same inputs, same offsets, so benchmark runs are reproducible op
    for op.  ``offsets()`` yields seconds relative to the epoch the
    load generator chooses (its own start time).
    """

    def __init__(
        self, rate: float, duration: float, seed: int = 0
    ) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = rate
        self.duration = duration
        self.seed = seed

    def offsets(self) -> "list[float]":
        """Arrival offsets in ``[0, duration)``, ascending."""
        rng = random.Random(self.seed)
        out: list[float] = []
        t = rng.expovariate(self.rate)
        while t < self.duration:
            out.append(t)
            t += rng.expovariate(self.rate)
        return out

    def schedule(self, ops: "Sequence[object]") -> "list[tuple]":
        """Zip ``ops`` onto the arrival offsets.

        Returns ``[(offset, *op), ...]`` — with ``(method, payload)``
        ops this is exactly the open-loop load generator's input.
        Stops at whichever runs out first (arrivals or ops); the
        caller sizes ``ops`` to ``rate * duration`` plus slack when
        it wants the full window covered.
        """
        return [
            (offset,) + tuple(op)
            for offset, op in zip(self.offsets(), ops)
        ]
