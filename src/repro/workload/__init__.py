"""Deterministic workload generation for benchmarks and tests.

:mod:`repro.workload.scenario` (runnable as
``python -m repro.workload.scenario``) is deliberately not re-exported
here: importing it at package level would shadow its ``-m`` execution
and it pulls in the full database assembly.
"""

from repro.workload.generator import (
    MixSpec,
    Op,
    RectKeys,
    RectWorkload,
    ScalarKeys,
    ScalarWorkload,
    SetKeys,
    partition_ops,
)

__all__ = [
    "MixSpec",
    "Op",
    "RectKeys",
    "RectWorkload",
    "ScalarKeys",
    "ScalarWorkload",
    "SetKeys",
    "partition_ops",
]
