"""Deterministic workload generation for benchmarks and tests."""

from repro.workload.generator import (
    MixSpec,
    Op,
    RectKeys,
    RectWorkload,
    ScalarKeys,
    ScalarWorkload,
    SetKeys,
    partition_ops,
)

__all__ = [
    "MixSpec",
    "Op",
    "RectKeys",
    "RectWorkload",
    "ScalarKeys",
    "ScalarWorkload",
    "SetKeys",
    "partition_ops",
]
