"""The database assembly: storage + WAL + locks + transactions + trees.

A :class:`Database` wires together every substrate the paper assumes of
its host DBMS — buffer pool over a (simulated) disk, write-ahead log,
lock manager, transaction manager — and owns the catalog of GiST indexes
living on top of them.  It also implements the **undo executor**: the
dispatcher that rolls back one log record, page-oriented for structure
modifications and logical (through the owning tree) for leaf content
records (section 9.2, Table 1's undo column).

Crash simulation is two calls: :meth:`crash` discards all volatile state
(buffer pool, unflushed log tail), and :meth:`restart` builds a fresh
assembly over the surviving disk + log and runs ARIES-style restart
recovery on it.
"""

from __future__ import annotations

import os
from typing import Mapping

from repro.errors import ReproError, WALError
from repro.faults import FaultPlan
from repro.gist.extension import GiSTExtension
from repro.gist.tree import GiST
from repro.lock.manager import LockManager
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.storage.buffer import BufferPool
from repro.storage.disk import PageStore
from repro.storage.page import Page, PageKind
from repro.sync.hooks import Hooks
from repro.sync.latch import LatchMode
from repro.txn.manager import TransactionManager
from repro.txn.transaction import IsolationLevel, Transaction
from repro.wal.log import LogManager
from repro.wal.records import (
    AddLeafEntryRecord,
    CheckpointRecord,
    FreePageRecord,
    GetPageRecord,
    InternalEntryAddRecord,
    InternalEntryDeleteRecord,
    InternalEntryUpdateRecord,
    LogRecord,
    MarkLeafEntryRecord,
    PageImageClr,
    RightlinkUpdateRecord,
    RootReplaceRecord,
    RootSplitRecord,
    SplitRecord,
    TreeCreateRecord,
)

#: xid reserved for system activity (tree creation, checkpoints)
SYSTEM_XID = 0


class Database:
    """An embedded database instance hosting GiST indexes.

    Parameters
    ----------
    io_delay:
        Simulated disk latency per page read/write, in seconds.
    page_capacity:
        Entries per page (the tree fanout).
    pool_capacity:
        Buffer pool size in frames.
    lock_timeout:
        Backstop lock-wait timeout (deadlocks are detected eagerly; the
        timeout only catches bugs).
    wal_writer:
        ``True`` runs a dedicated WAL writer thread: committers enqueue
        their flush target and park on a condition while the writer
        coalesces requests into group commits, lingering up to the
        group-commit window for stragglers (``wal.writer.*`` gauges).
        Off by default — flushes then force inline with the original
        leader/rider group commit.
    group_commit_window:
        Writer linger window in seconds: ``None`` (default) adapts to
        the observed commit arrival rate, ``0.0`` forces as soon as the
        queue is non-empty, a positive value is a fixed window.  Only
        meaningful with ``wal_writer=True``.
    store, log:
        Supply existing instances to reopen a database after a crash
        (normally via :meth:`restart`).
    metrics_enabled:
        ``False`` builds the whole assembly over a disabled metrics
        registry: every instrument is a shared no-op and no clock is
        read on any hot path (``benchmarks/bench_obs_overhead.py``
        measures the difference).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injecting storage and
        WAL-tail faults on a seeded, deterministic schedule (DESIGN.md
        §9).  ``None`` disables all injection; the checksum machinery
        stays on either way.
    io_retries, io_retry_backoff:
        Transient-read retry policy forwarded to the buffer pool.
    protocol_checks:
        ``True`` attaches a :class:`repro.analysis.lockdep.LockdepWitness`
        to the latches, buffer-shard mutexes, lock manager and page
        store: lock-order cycles (potential ABBA deadlocks),
        latch-held-across-I/O, latch-held-across-lock-wait and WAL-rule
        violations are recorded as they happen (``protocol_report()``).
        ``None`` (the default) reads the ``REPRO_PROTOCOL_CHECKS``
        environment variable; ``False``/unset keeps every hot path free
        of witness calls (counter-asserted in ``bench_hotpath``).
    op_tracing:
        ``True`` attaches a :class:`repro.obs.spans.SpanTracker`: every
        operation opens an :class:`~repro.obs.spans.OpSpan` and latches,
        the lock manager, the buffer pool and the WAL attribute their
        stalls to it (``op.<kind>.*`` in ``db.metrics.snapshot()``,
        pretty-printed by ``python -m repro.tools.trace``).  Off by
        default; when off, every subsystem holds ``None`` and the hot
        paths are span-free (counter-asserted in ``bench_obs_overhead``).
    trace_capacity:
        Per-thread ring size of the structured tracer
        (``db.metrics.tracer``); also retained across :meth:`restart`.
    flight_recorder, flight_capacity:
        The always-on black box (:class:`repro.obs.flightrec.
        FlightRecorder`): a bounded per-thread ring of recent rare
        events (txn begin/commit/abort, SMOs, deadlock victims, lockdep
        hard violations, crash/restart), dumped as replayable JSONL by
        failed chaos trials.  On by default — it records only rare
        events, within the ``bench_obs_overhead`` extra-calls budget.
    flightrec:
        Adopt an existing recorder instead of building one.
        :meth:`restart` passes the pre-crash instance through so the
        black box spans the crash boundary.
    """

    def __init__(
        self,
        *,
        io_delay: float = 0.0,
        page_capacity: int = 32,
        pool_capacity: int = 4096,
        lock_timeout: float | None = 30.0,
        flush_delay: float = 0.0,
        wal_writer: bool = False,
        group_commit_window: float | None = None,
        hooks: Hooks | None = None,
        store: PageStore | None = None,
        log: LogManager | None = None,
        metrics_enabled: bool = True,
        pool_shards: int = 8,
        leaf_hints: bool = False,
        fault_plan: FaultPlan | None = None,
        io_retries: int = 4,
        io_retry_backoff: float = 0.001,
        protocol_checks: bool | None = None,
        op_tracing: bool = False,
        trace_capacity: int = 1024,
        flight_recorder: bool = True,
        flight_capacity: int = 512,
        flightrec: FlightRecorder | None = None,
    ) -> None:
        self.metrics = MetricsRegistry(
            enabled=metrics_enabled, trace_capacity=trace_capacity
        )
        self.op_tracing = op_tracing
        self.trace_capacity = trace_capacity
        #: per-op latency attribution; ``None`` when off — subsystems
        #: gate on the reference, paying one attribute-load + branch
        self.spans = SpanTracker(self.metrics) if op_tracing else None
        self.flight_recorder_enabled = flight_recorder
        self.flight_capacity = flight_capacity
        if flightrec is not None:
            self.flightrec: FlightRecorder | None = flightrec
        elif flight_recorder:
            self.flightrec = FlightRecorder(capacity=flight_capacity)
        else:
            self.flightrec = None
        self.pool_shards = pool_shards
        #: opt-in leaf-hint descent cache, read by each GiST at creation
        self.leaf_hints = leaf_hints
        self.io_retries = io_retries
        self.io_retry_backoff = io_retry_backoff
        self.store = store or PageStore(
            io_delay=io_delay,
            page_capacity=page_capacity,
            fault_plan=fault_plan,
        )
        #: the plan travels with the store across restarts; an explicit
        #: argument wins over (and is installed on) a supplied store
        if fault_plan is not None:
            self.store.fault_plan = fault_plan
        self.fault_plan = self.store.fault_plan
        self.store.bind_metrics(self.metrics)
        if log is None:
            self.log = LogManager(
                flush_delay=flush_delay, metrics=self.metrics
            )
        else:
            # A log that survived a crash re-homes its wal.* counters
            # here, carrying totals across the restart.
            self.log = log
            self.log.bind_metrics(self.metrics)
        # The log survives restarts: always (re)assign the tracker so a
        # restart without op_tracing drops the stale one.
        self.log.tracker = self.spans
        #: dedicated WAL writer thread + its group-commit window; both
        #: are (re)applied to an adopted log so a restart with the knob
        #: toggled never keeps a stale writer running
        self.wal_writer = wal_writer
        self.group_commit_window = group_commit_window
        self.log.group_commit_window = group_commit_window
        if wal_writer:
            self.log.start_wal_writer()
        else:
            self.log.stop_wal_writer()
        self.pool = BufferPool(
            self.store,
            capacity=pool_capacity,
            wal_flush=self.log.flush,
            metrics=self.metrics,
            shards=pool_shards,
            io_retries=io_retries,
            io_retry_backoff=io_retry_backoff,
        )
        #: torn pages found at fix time are rebuilt by full WAL replay
        self.pool.page_rebuilder = self._rebuild_page
        self.pool.attach_span_tracker(self.spans)
        self.locks = LockManager(
            default_timeout=lock_timeout, metrics=self.metrics
        )
        self.locks.tracker = self.spans
        self.locks.flightrec = self.flightrec
        self.txns = TransactionManager(self.log, self.locks, predicates=self)
        self.txns.undo_executor = self._undo_record
        if protocol_checks is None:
            env = os.environ.get("REPRO_PROTOCOL_CHECKS", "")
            protocol_checks = env.lower() not in ("", "0", "false", "off")
        self.protocol_checks = bool(protocol_checks)
        if self.protocol_checks:
            from repro.analysis.lockdep import LockdepWitness

            self.witness = LockdepWitness(
                flushed_lsn=lambda: self.log.flushed_lsn,
                flightrec=self.flightrec,
            )
        else:
            self.witness = None
        # The store (and its witness binding) survives restarts: always
        # rebind/clear so a plain restart drops a stale witness.
        self.store.witness = self.witness
        self.pool.attach_witness(self.witness)
        self.locks.witness = self.witness
        self.hooks = hooks or Hooks()
        self.trees: dict[str, GiST] = {}
        self.metrics.gauge(
            "txn.active", lambda: len(self.txns.active_transactions())
        )
        self.metrics.gauge(
            "txn.committed", lambda: len(self.txns.committed_xids)
        )
        self.metrics.gauge(
            "txn.aborted", lambda: len(self.txns.aborted_xids)
        )
        #: set during restart recovery: logical undo must not trigger
        #: structure modifications (section 9.2)
        self.in_restart = False

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_tree(
        self,
        name: str,
        extension: GiSTExtension,
        *,
        unique: bool = False,
        nsn_source: str = "counter",
    ) -> GiST:
        """Create a new (empty) GiST index."""
        if name in self.trees:
            raise ReproError(f"tree {name!r} already exists")
        root_pid = self.store.allocate()
        self.log.append(GetPageRecord(xid=SYSTEM_XID, page_id=root_pid))
        record = TreeCreateRecord(
            xid=SYSTEM_XID,
            name=name,
            root_pid=root_pid,
            unique=unique,
            nsn_source=nsn_source,
        )
        lsn = self.log.append(record)
        from repro.storage.page import Page

        root = Page(
            pid=root_pid,
            kind=PageKind.LEAF,
            capacity=self.store.page_capacity,
        )
        record.redo_page(root)
        frame = self.pool.adopt(root)
        frame.mark_dirty(lsn)
        self.log.flush(lsn)
        tree = GiST(
            self,
            name,
            extension,
            root_pid,
            unique=unique,
            nsn_source=nsn_source,
        )
        self.trees[name] = tree
        return tree

    def tree(self, name: str) -> GiST:
        """Look up a tree by name (raises for unknown names)."""
        try:
            return self.trees[name]
        except KeyError:
            raise ReproError(f"no tree named {name!r}") from None

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(
        self, isolation: IsolationLevel = IsolationLevel.REPEATABLE_READ
    ) -> Transaction:
        """Start a transaction at the given isolation level."""
        txn = self.txns.begin(isolation)
        if self.flightrec is not None:
            self.flightrec.record("txn.begin", xid=txn.xid)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit ``txn``: force the log, release locks and predicates."""
        spans = self.spans
        span = spans.begin("commit") if spans is not None else None
        try:
            self.txns.commit(txn)
        finally:
            if spans is not None:
                spans.finish(span)
        if self.flightrec is not None:
            self.flightrec.record("txn.commit", xid=txn.xid)

    def rollback(self, txn: Transaction) -> None:
        """Abort ``txn``: undo all of its effects, then release everything."""
        spans = self.spans
        span = spans.begin("abort") if spans is not None else None
        try:
            self.txns.rollback(txn)
        finally:
            if spans is not None:
                spans.finish(span)
        if self.flightrec is not None:
            self.flightrec.record("txn.abort", xid=txn.xid)

    def commit_many(self, txns: "list[Transaction]") -> None:
        """Commit a batch of transactions under one shared log force."""
        spans = self.spans
        span = spans.begin("commit_many") if spans is not None else None
        try:
            self.txns.commit_many(txns)
        finally:
            if spans is not None:
                spans.finish(span)
        if self.flightrec is not None:
            for txn in txns:
                self.flightrec.record("txn.commit", xid=txn.xid)

    # ------------------------------------------------------------------
    # batched operations (thin tree dispatch)
    # ------------------------------------------------------------------
    def _tree_of(self, tree: "GiST | str") -> GiST:
        return tree if isinstance(tree, GiST) else self.tree(tree)

    def multi_put(
        self, txn: Transaction, tree: "GiST | str", pairs
    ) -> int:
        """Batched insert of ``(key, rid)`` pairs into ``tree``.

        Sorts the batch and shares one descent per leaf run; see
        :meth:`repro.gist.tree.GiST.multi_put`.
        """
        return self._tree_of(tree).multi_put(txn, pairs)

    def multi_get(self, txn: Transaction, tree: "GiST | str", keys) -> dict:
        """Batched point lookup; see :meth:`repro.gist.tree.GiST.multi_get`."""
        return self._tree_of(tree).multi_get(txn, keys)

    def multi_delete(
        self, txn: Transaction, tree: "GiST | str", pairs
    ) -> int:
        """Batched delete of ``(key, rid)`` pairs; see
        :meth:`repro.gist.tree.GiST.multi_delete`."""
        return self._tree_of(tree).multi_delete(txn, pairs)

    def bulk_load(
        self, txn: Transaction, tree: "GiST | str", pairs, *, fill=0.75
    ) -> int:
        """Bottom-up bulk load of an empty tree; see
        :meth:`repro.gist.tree.GiST.bulk_load`."""
        return self._tree_of(tree).bulk_load(txn, pairs, fill=fill)

    # duck-typed predicate registry for the transaction manager
    def release_transaction(self, xid: int) -> None:
        """Drop the transaction's predicates in every tree (txn-manager hook)."""
        for tree in self.trees.values():
            tree.predicates.release_transaction(xid)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Take a fuzzy checkpoint; returns its LSN."""
        att = {
            txn.xid: self.log.last_lsn_of(txn.xid)
            for txn in self.txns.active_transactions()
        }
        record = CheckpointRecord(
            xid=SYSTEM_XID, att=att, dpt=self.pool.dirty_page_table()
        )
        lsn = self.log.append(record)
        self.log.flush(lsn)
        self.log.master_lsn = lsn
        return lsn

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state (buffer pool, unflushed log tail).

        The caller must have stopped worker threads; live transactions
        simply vanish, exactly as in a power failure, and will be rolled
        back by restart recovery.

        When a fault plan schedules WAL-tail faults, they fire here: the
        final log write may have been torn, losing or corrupting the
        last few durable records.  Faults never reach below the highest
        LSN any persisted page or checkpoint depends on — those records
        were written strictly before the dependent state (WAL rule), so
        a torn *last* write cannot have touched them.
        """
        if self.flightrec is not None:
            self.flightrec.record(
                "db.crash", flushed_lsn=self.log.flushed_lsn
            )
        # The writer thread dies with the process: abandon pending flush
        # requests (parked committers fall back inline) before the
        # unflushed tail is discarded.
        self.log.stop_wal_writer(drain=False)
        self.log.crash()
        self.pool.crash()
        if self.fault_plan is not None:
            loss, corrupt = self.fault_plan.wal_tail_actions()
            if loss or corrupt is not None:
                floor = max(
                    self.store.max_durable_lsn(), self.log.master_lsn
                )
                if loss:
                    self.log.torn_tail_loss(loss, floor)
                if corrupt is not None:
                    self.log.corrupt_tail_record(corrupt, floor)

    def restart(
        self, extensions: Mapping[str, GiSTExtension], **config: object
    ) -> "Database":
        """Open a fresh database over this one's disk + log and recover.

        ``extensions`` maps tree names to extension instances (extension
        code cannot be stored in the log; the application supplies it at
        open time, as PostgreSQL does with operator classes).

        Restart models recovery onto *repaired* hardware: the fault
        plan's storage faults are deactivated (damage already persisted
        — torn images, lost tail records — remains, as state), so
        recovery itself runs deterministically and redo can finally
        rewrite pages a permanent write fault had poisoned.  The
        :class:`~repro.wal.recovery.RecoveryReport` is exposed as
        ``recovery_report`` on the returned database.
        """
        from repro.wal.recovery import RestartRecovery

        if self.fault_plan is not None:
            self.fault_plan.note_restart()
        config.setdefault("page_capacity", self.store.page_capacity)
        config.setdefault("metrics_enabled", self.metrics.enabled)
        config.setdefault("pool_shards", self.pool_shards)
        config.setdefault("leaf_hints", self.leaf_hints)
        config.setdefault("wal_writer", self.wal_writer)
        config.setdefault("group_commit_window", self.group_commit_window)
        config.setdefault("io_retries", self.io_retries)
        config.setdefault("io_retry_backoff", self.io_retry_backoff)
        config.setdefault("protocol_checks", self.protocol_checks)
        config.setdefault("op_tracing", self.op_tracing)
        config.setdefault("trace_capacity", self.trace_capacity)
        config.setdefault("flight_recorder", self.flight_recorder_enabled)
        config.setdefault("flight_capacity", self.flight_capacity)
        # The black box is the external observer, not volatile state:
        # the pre-crash instance carries over so a post-restart dump
        # still shows the events that led up to the crash.
        config.setdefault("flightrec", self.flightrec)
        new_db = Database(store=self.store, log=self.log, **config)
        if new_db.flightrec is not None:
            new_db.flightrec.record("db.restart")
        new_db.recovery_report = RestartRecovery(new_db, extensions).run()
        if new_db.flightrec is not None:
            report = new_db.recovery_report
            new_db.flightrec.record(
                "db.recovered",
                analyzed=report.analyzed_records,
                redone=report.redone_records,
                undone=report.undone_records,
                losers=sorted(report.losers),
                tail_dropped=report.tail_records_dropped,
                torn_healed=report.torn_pages_healed,
            )
        return new_db

    @classmethod
    def open_from_log(
        cls,
        log: LogManager,
        extensions: Mapping[str, GiSTExtension],
        **config: object,
    ) -> "Database":
        """Open a database over an *empty* store + a surviving log.

        The cross-process re-open path: a partition worker that was
        killed (SIGKILL — process memory, buffer pool and unflushed log
        tail all gone) is respawned with only the durable log records
        its WAL shadow preserved.  Restart recovery's redo pass
        reconstructs every page from its full WAL history onto the
        fresh store (the same machinery that heals a torn page), and
        undo rolls back the losers, so the recovered database is
        exactly the durable prefix's committed state.

        ``config`` must include ``page_capacity`` when the original
        database used a non-default one — the store that persisted it
        did not survive, so the caller (the cluster manifest) is the
        only witness.  The :class:`~repro.wal.recovery.RecoveryReport`
        is exposed as ``recovery_report`` on the returned database.
        """
        from repro.wal.records import FreePageRecord, GetPageRecord
        from repro.wal.recovery import RestartRecovery

        db = cls(log=log, **config)
        if db.flightrec is not None:
            db.flightrec.record("db.open_from_log", end_lsn=log.end_lsn)
        db.recovery_report = RestartRecovery(db, extensions).run()
        # Redo replays allocation records only from the redo point, which
        # is enough when the allocator state survived the crash — here it
        # did not, and a Get-Page record logged *below* the redo point
        # would leave ``_next_pid`` behind the rebuilt pages, letting the
        # next split re-allocate a live pid.  Replay the full allocation
        # history (recovery's own CLRs included) in LSN order.
        for record in log.records_from(1):
            if isinstance(record, GetPageRecord):
                db.store.mark_allocated(record.page_id)
            elif isinstance(record, FreePageRecord):
                db.store.mark_free(record.page_id)
        return db

    def protocol_report(self):
        """Lockdep report (``protocol_checks=True``), else ``None``."""
        return None if self.witness is None else self.witness.report()

    def _rebuild_page(self, pid: int) -> "Page | None":
        """Rebuild a torn page's image by replaying its WAL history.

        Wired into :attr:`BufferPool.page_rebuilder`: when a page fix
        detects a checksum mismatch, the pool calls back here, and the
        page is reconstructed from the log (its full history is WAL-
        covered) rather than fatally rejected.  Returns ``None`` when
        no log record mentions the page — unrecoverable, so the typed
        error surfaces instead.

        The replay is bounded at ``flushed_lsn``: the pool persists the
        healed image, and a durable page must never depend on log
        records that a crash could still discard (the WAL rule).  The
        torn image only reached disk after a flush that forced the log
        through its intended page_lsn, so the durable prefix always
        covers the full intended image.
        """
        from repro.wal.recovery import rebuild_page_from_log

        return rebuild_page_from_log(
            self.log, self.store, pid, upto=self.log.flushed_lsn
        )

    # ------------------------------------------------------------------
    # the undo executor (Table 1's undo column)
    # ------------------------------------------------------------------
    def _undo_record(self, record: LogRecord, txn: object) -> None:
        """Undo one log record on behalf of a rolling-back transaction.

        Leaf content records undo *logically* through the owning tree;
        structure-modification records undo page-oriented; page
        allocation records undo against the allocation map.  Every undo
        writes a compensation record whose ``undo_next`` skips the undone
        record on any repeated rollback attempt.
        """
        xid = getattr(txn, "xid", txn)
        if isinstance(record, AddLeafEntryRecord):
            tree = self.tree(record.tree)
            tree.undo_add_leaf_entry(record, xid, restart=self.in_restart)
        elif isinstance(record, MarkLeafEntryRecord):
            tree = self.tree(record.tree)
            tree.undo_mark_leaf_entry(record, xid, restart=self.in_restart)
        elif isinstance(record, (SplitRecord, RootSplitRecord)):
            pid = (
                record.orig_pid
                if isinstance(record, SplitRecord)
                else record.root_pid
            )
            with self.pool.fixed(pid, LatchMode.X) as frame:
                record.undo_page(frame.page)
                clr = PageImageClr(
                    xid=xid, page_id=pid, image=frame.page.snapshot()
                )
                clr.undo_next = record.prev_lsn
                lsn = self.log.append(clr)
                frame.mark_dirty(lsn)
        elif isinstance(record, RootReplaceRecord):
            # Bulk-load root attach: restore the pre-attach root image
            # so the subsequent GetPageRecord undos (lower LSNs in the
            # same backward sweep) free pages the root no longer
            # references.
            with self.pool.fixed(record.page_id, LatchMode.X) as frame:
                record.undo_page(frame.page)
                clr = PageImageClr(
                    xid=xid,
                    page_id=record.page_id,
                    image=frame.page.snapshot(),
                )
                clr.undo_next = record.prev_lsn
                lsn = self.log.append(clr)
                frame.mark_dirty(lsn)
            for tree in self.trees.values():
                if tree.root_pid == record.page_id:
                    tree.bump_hint_epoch()
                    tree.bump_bp_epoch()
        elif isinstance(record, InternalEntryAddRecord):
            clr = InternalEntryDeleteRecord(
                xid=xid,
                page_id=record.page_id,
                pred=record.pred,
                child=record.child,
            )
            self._apply_page_clr(record, clr)
        elif isinstance(record, InternalEntryUpdateRecord):
            clr = InternalEntryUpdateRecord(
                xid=xid,
                page_id=record.page_id,
                child=record.child,
                new_bp=record.old_bp,
                old_bp=record.new_bp,
            )
            self._apply_page_clr(record, clr)
        elif isinstance(record, InternalEntryDeleteRecord):
            clr = InternalEntryAddRecord(
                xid=xid,
                page_id=record.page_id,
                pred=record.pred,
                child=record.child,
            )
            self._apply_page_clr(record, clr)
        elif isinstance(record, RightlinkUpdateRecord):
            clr = RightlinkUpdateRecord(
                xid=xid,
                page_id=record.page_id,
                new_rightlink=record.old_rightlink,
                old_rightlink=record.new_rightlink,
            )
            self._apply_page_clr(record, clr)
        elif isinstance(record, GetPageRecord):
            clr = FreePageRecord(xid=xid, page_id=record.page_id)
            clr.undo_next = record.prev_lsn
            self.log.append(clr)
            self.store.mark_free(record.page_id)
            if self.pool.resident(record.page_id):
                self.pool.drop(record.page_id)
            # The freed pid may be reused by a later allocation: no leaf
            # hint anywhere may keep pointing at it.
            for tree in self.trees.values():
                tree.bump_hint_epoch()
        elif isinstance(record, FreePageRecord):
            clr = GetPageRecord(xid=xid, page_id=record.page_id)
            clr.undo_next = record.prev_lsn
            self.log.append(clr)
            self.store.mark_allocated(record.page_id)
        else:
            raise WALError(
                f"no undo action for record type {record.type_name()}"
            )

    def _apply_page_clr(self, record: LogRecord, clr: LogRecord) -> None:
        clr.undo_next = record.prev_lsn
        with self.pool.fixed(clr.page_id, LatchMode.X) as frame:
            lsn = self.log.append(clr)
            clr.redo_page(frame.page)
            frame.mark_dirty(lsn)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One aggregated statistics snapshot across every subsystem."""
        return {
            "io": self.store.stats.snapshot(),
            "buffer": {
                "hits": self.pool.hits,
                "misses": self.pool.misses,
                "evictions": self.pool.evictions,
                "dirty": len(self.pool.dirty_page_table()),
            },
            "log": {
                **self.log.stats.snapshot(),
                "end_lsn": self.log.end_lsn,
                "flushed_lsn": self.log.flushed_lsn,
            },
            "locks": self.locks.stats.snapshot(),
            "txns": {
                "active": len(self.txns.active_transactions()),
                "committed": len(self.txns.committed_xids),
                "aborted": len(self.txns.aborted_xids),
            },
            "trees": {
                name: {
                    **tree.stats.snapshot(),
                    "predicates": tree.predicates.stats.snapshot(),
                    "nsn_reads": tree.nsn.global_reads,
                }
                for name, tree in self.trees.items()
            },
        }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Clean shutdown: checkpoint, flush everything."""
        self.checkpoint()
        self.pool.flush_all()
        self.log.flush()
        self.log.stop_wal_writer(drain=True)
