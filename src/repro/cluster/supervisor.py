"""Worker process lifecycle: spawn, watch, kill, recover.

The supervisor owns the fork/handshake dance and the failure path.  A
worker's death is *detected* at the RPC layer (EOF on its channel →
:class:`~repro.errors.ChannelClosedError`) and *handled* here: respawn
the partition with ``recover=True`` so the new process rebuilds its
database from the partition's WAL shadow, then re-run the ready
handshake and resume routing.  The chaos harness drives this path
deliberately (SIGKILL mid-workload) and audits the result against the
commit-LSN oracle.

Workers are forked, not spawned: the child inherits the socketpair end
and the in-memory :class:`WorkerConfig` (extension instances included)
without pickling, matching how the rest of the repo treats extension
code — supplied by the embedder, never serialized.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Callable

from repro.cluster.rpc import FrameChannel, channel_pair
from repro.cluster.worker import WorkerConfig, worker_entry
from repro.errors import ClusterError

#: explicit fork context: the worker must inherit its socket fd and
#: config object; spawn would re-import and re-pickle both
_MP = multiprocessing.get_context("fork")


class WorkerHandle:
    """One partition's live process + client channel + vital signs."""

    def __init__(
        self,
        partition: int,
        process: "multiprocessing.Process",
        channel: FrameChannel,
        ready_info: dict,
    ) -> None:
        self.partition = partition
        self.process = process
        self.channel = channel
        #: handshake payload: recovery summary (if any) and end LSN
        self.ready_info = ready_info
        self.dead = False

    def is_alive(self) -> bool:
        return not self.dead and self.process.is_alive()


class Supervisor:
    """Spawns and resurrects the cluster's partition workers.

    Configs come from a *factory*, not a snapshot: the catalog grows
    after the cluster starts (``create_tree`` broadcasts), and a
    recovery respawn must ship the catalog as it is *now* — a config
    captured at cluster start would strand recovery without the
    extensions it needs to rebuild the trees.
    """

    def __init__(
        self,
        partitions: int,
        config_factory: "Callable[[int, bool], WorkerConfig]",
        *,
        initial_recover: bool = False,
    ) -> None:
        self.partitions = partitions
        self._factory = config_factory
        self.handles: dict[int, WorkerHandle] = {}
        #: lifetime count of crash-recovery respawns (metrics feed)
        self.restarts = 0
        for p in range(partitions):
            self.handles[p] = self._spawn(
                config_factory(p, initial_recover)
            )

    # ------------------------------------------------------------------
    # spawn / handshake
    # ------------------------------------------------------------------
    def _spawn(self, config: WorkerConfig) -> WorkerHandle:
        client_ch, worker_ch = channel_pair()
        process = _MP.Process(
            target=worker_entry,
            args=(worker_ch, config),
            name=f"partition-{config.partition}",
            daemon=True,
        )
        process.start()
        # The parent must drop its copy of the worker-end fd: as long
        # as it stays open here, a dead worker's socket never reaches
        # EOF and death detection goes blind.
        worker_ch.close()
        tag, info = client_ch.recv()
        if tag != "ready":  # pragma: no cover - handshake is fixed
            raise ClusterError(
                f"partition {config.partition} sent {tag!r}, not ready"
            )
        return WorkerHandle(config.partition, process, client_ch, info)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def handle(self, partition: int) -> WorkerHandle:
        try:
            return self.handles[partition]
        except KeyError:
            raise ClusterError(f"no partition {partition}") from None

    def is_alive(self, partition: int) -> bool:
        return self.handle(partition).is_alive()

    # ------------------------------------------------------------------
    # failure injection + recovery
    # ------------------------------------------------------------------
    def kill(self, partition: int) -> None:
        """SIGKILL a worker (chaos path): no cleanup, no flush, no ack."""
        handle = self.handle(partition)
        if handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)
            # bounded reap: a SIGKILLed child that still won't join is
            # kernel-stuck; wedging the supervisor on it helps nobody
            handle.process.join(timeout=5)
        handle.dead = True
        handle.channel.close()

    def mark_dead(self, partition: int) -> None:
        """Record a death detected at the RPC layer (EOF mid-call)."""
        handle = self.handle(partition)
        handle.dead = True
        handle.channel.close()
        if handle.process.is_alive():  # zombie guard: EOF but not reaped
            handle.process.join(timeout=5)

    def recover(self, partition: int) -> WorkerHandle:
        """Respawn a dead partition from its WAL shadow."""
        old = self.handle(partition)
        if old.is_alive():
            raise ClusterError(
                f"partition {partition} is alive; kill it first"
            )
        handle = self._spawn(self._factory(partition, True))
        self.handles[partition] = handle
        self.restarts += 1
        return handle

    def ensure(self, partition: int) -> WorkerHandle:
        """The live handle, recovering the partition if it died."""
        handle = self.handle(partition)
        if not handle.is_alive():
            if handle.process.is_alive():
                self.mark_dead(partition)
            handle = self.recover(partition)
        return handle

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate every worker (graceful close is the client's job)."""
        for handle in self.handles.values():
            handle.channel.close()
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.dead = True
