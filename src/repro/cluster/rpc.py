"""Framed RPC over a raw byte stream (the partition wire protocol).

The cluster runs one OS process per partition; the front end talks to
each worker over a ``socket.socketpair()`` inherited across ``fork``.
A Unix stream socket delivers *bytes*, not messages, so this module
supplies the framing the transport lacks:

``frame := header || payload``
    ``header = struct('!II')`` — payload length and CRC32 over the
    payload.  ``payload`` is the pickled message object.

The CRC turns a half-written frame (worker killed mid-``send``) into a
typed :class:`~repro.errors.FrameCorruptionError` instead of a pickle
error deep inside the client, exactly as the page/WAL checksums do for
the storage layer (DESIGN.md §9).  EOF — the peer process died — is a
typed :class:`~repro.errors.ChannelClosedError`, which is the signal
the supervisor keys worker-death detection on.

Messages are request/response pairs:

* request: ``(request_id, method, payload)``
* response: ``(request_id, ok, payload)`` — ``ok=False`` carries
  ``(exception_class_name, message)`` and is re-raised client-side as
  :class:`~repro.errors.WorkerFaultError`.

Batching happens *above* the framing: one request's payload may carry a
whole operation batch (``multi_put`` pairs, a scatter fan-out leg), so
the per-frame overhead — two syscalls, one header — amortizes across
the batch, mirroring how the PR 7 batch APIs amortize descent cost.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
import zlib

from repro.errors import (
    ChannelClosedError,
    FrameCorruptionError,
    RpcTimeoutError,
    best_effort,
)

#: frame header: payload length + CRC32 over the payload
_HEADER = struct.Struct("!II")

#: refuse absurd frames instead of attempting a multi-GiB recv — a
#: corrupt length field must fail fast, not allocate
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameChannel:
    """One endpoint of a framed, pickled message stream.

    Thread-compatibility: a channel is *not* internally locked — the
    owner (client stub or worker loop) serializes access.  The client
    side wraps each channel in a per-partition mutex acquired in
    partition order for scatter calls, which is what makes concurrent
    multi-partition fan-outs deadlock-free.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        #: wire accounting, read by the cluster metrics gauges
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # frames
    # ------------------------------------------------------------------
    def send(self, message: object, timeout: float | None = None) -> None:
        """Pickle ``message`` and write it as one framed unit.

        ``timeout`` bounds the whole send: a peer whose socket buffer
        is full (hung worker, reader stopped) raises
        :class:`~repro.errors.RpcTimeoutError` instead of blocking in
        ``sendall`` forever.  After a timeout the stream position is
        undefined (the frame may be half-written) — the channel must be
        closed, never reused.
        """
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(len(payload), zlib.crc32(payload))
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(header + payload)
        except socket.timeout as exc:
            raise RpcTimeoutError(
                f"send exceeded {timeout:.3f}s (peer hung?)"
            ) from exc
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ChannelClosedError(f"peer gone on send: {exc}") from exc
        finally:
            self._settimeout_quietly(None)
        self.frames_sent += 1
        self.bytes_sent += len(header) + len(payload)

    def recv(self, timeout: float | None = None) -> object:
        """Read one frame, verify its CRC and unpickle the message.

        ``timeout`` bounds the *whole* frame (header + payload), not
        each chunk; on expiry :class:`~repro.errors.RpcTimeoutError` is
        raised and the channel is poisoned — a half-read frame cannot
        be resynchronized, so the caller must close it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        header = self._recv_exact(_HEADER.size, deadline)
        length, crc = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise FrameCorruptionError(
                f"frame length {length} exceeds {MAX_FRAME_BYTES}"
            )
        payload = self._recv_exact(length, deadline)
        if zlib.crc32(payload) != crc:
            raise FrameCorruptionError(
                f"frame CRC mismatch over {length} bytes"
            )
        self.frames_received += 1
        self.bytes_received += _HEADER.size + length
        return pickle.loads(payload)

    def _recv_exact(
        self, count: int, deadline: float | None = None
    ) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise RpcTimeoutError(
                        f"recv deadline expired with "
                        f"{count - remaining}/{count} bytes read"
                    )
                self._settimeout_quietly(budget)
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as exc:
                raise RpcTimeoutError(
                    f"recv deadline expired with "
                    f"{count - remaining}/{count} bytes read"
                ) from exc
            except (ConnectionResetError, OSError) as exc:
                raise ChannelClosedError(
                    f"peer gone on recv: {exc}"
                ) from exc
            finally:
                if deadline is not None:
                    self._settimeout_quietly(None)
            if not chunk:
                raise ChannelClosedError(
                    f"peer closed mid-frame ({count - remaining}/{count} "
                    "bytes read)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _settimeout_quietly(self, timeout: float | None) -> None:
        """Reset the socket timeout; a closed socket is already fatal."""
        best_effort(self._sock.settimeout, timeout, only=(OSError,))

    def close(self) -> None:
        """Close this endpoint (idempotent)."""
        best_effort(self._sock.close, only=(OSError,))

    def fileno(self) -> int:
        """Underlying descriptor (inherited by forked workers)."""
        return self._sock.fileno()


def channel_pair() -> tuple[FrameChannel, FrameChannel]:
    """A connected (client, worker) channel pair over a socketpair."""
    a, b = socket.socketpair()
    return FrameChannel(a), FrameChannel(b)


# ---------------------------------------------------------------------------
# request / response envelopes
# ---------------------------------------------------------------------------


def request(req_id: int, method: str, payload: object) -> tuple:
    """Build a request envelope."""
    return (req_id, method, payload)


def ok_response(req_id: int, payload: object) -> tuple:
    """Build a success response envelope."""
    return (req_id, True, payload)


def error_response(req_id: int, exc: BaseException) -> tuple:
    """Build an error response carrying the exception's identity."""
    return (req_id, False, (type(exc).__name__, str(exc)))
