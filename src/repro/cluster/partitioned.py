"""The cluster front end: one logical database over N partition workers.

:class:`PartitionedDatabase` is the embedder-facing object.  It routes
single-key operations to the owning partition (pluggable
:mod:`~repro.cluster.router` policy), scatters multi-partition work as
pipelined fan-outs (send every leg, then collect every ack — legs
execute concurrently in the worker processes), and merge-gathers range
scans into one ordered iteration via :func:`heapq.merge`.

Why processes: PR 1's latch coupling and PR 2's sharded buffer pool
scale *within* the GIL; a CPU-bound workload still serializes on the
interpreter lock.  Each partition worker is a whole
:class:`~repro.database.Database` in its own process — own WAL, own
buffer pool, own recovery — so partitions genuinely run in parallel,
and a partition crash is contained: the supervisor respawns it from
its durable WAL shadow while the other partitions keep serving.

Concurrency discipline (mirrors DESIGN.md §12's lock-ordering rules):
each partition's channel is guarded by a mutex, and scatter calls take
the mutexes in ascending partition order — the same
ordered-acquisition argument that makes the batch APIs ABBA-free makes
concurrent fan-outs here deadlock-free.

What is promised: per-partition linearizability (each worker is the
PR 6 oracle-checked database) and durability of every *acknowledged*
commit across worker SIGKILL.  What is **not** promised: atomicity
across partitions — a multi-partition batch commits per partition, and
a crash between legs leaves acknowledged legs durable and the failed
leg's effects "maybe" (present or absent), which is exactly what the
chaos harness's partition oracle accounts for.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import tempfile
import threading
import time

from repro.cluster.breaker import CircuitBreaker
from repro.cluster.router import Router, make_router
from repro.cluster.supervisor import Supervisor
from repro.cluster.worker import TreeSpec, WorkerConfig
from repro.errors import (
    ChannelClosedError,
    CircuitOpenError,
    ClusterError,
    PartitionFailedError,
    PartitionTimeoutError,
    RpcTimeoutError,
    WorkerFaultError,
    best_effort,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots

MANIFEST_NAME = "cluster.json"


def _budget(deadline: float | None) -> float | None:
    """Remaining seconds until ``deadline`` (monotonic), ``None`` = ∞.

    Clamped to a tiny positive value rather than zero: a zero socket
    timeout means non-blocking mode, which would surface as spurious
    ``BlockingIOError`` instead of the typed timeout.
    """
    if deadline is None:
        return None
    return max(1e-6, deadline - time.monotonic())


class PartitionedDatabase:
    """Hash/range-partitioned database over process-per-partition workers."""

    def __init__(
        self,
        partitions: int = 2,
        *,
        router: "Router | dict | str" = "hash",
        data_dir: str | None = None,
        metrics_enabled: bool = True,
        rpc_timeout: float | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        **db_config,
    ) -> None:
        self.partitions = partitions
        self.router = make_router(router, partitions)
        if data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_data_dir = True
        else:
            os.makedirs(data_dir, exist_ok=True)
            self._owns_data_dir = False
        self.data_dir = data_dir
        self.db_config = dict(db_config)
        #: default per-call RPC deadline (``None``: wait forever, the
        #: pre-serving behavior); individual calls may override
        self.rpc_timeout = rpc_timeout
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: tree name -> TreeSpec (the parent-side catalog mirror)
        self.catalog: dict[str, TreeSpec] = {}
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self._req_ids = itertools.count(1)
        self._locks = [threading.Lock() for _ in range(partitions)]
        self._breakers = self._make_breakers()
        self._closed = False
        self.supervisor = Supervisor(partitions, self._config_factory)
        self._register_gauges()
        self._write_manifest()

    def _make_breakers(self) -> "list[CircuitBreaker]":
        return [
            CircuitBreaker(
                p,
                threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
            )
            for p in range(self.partitions)
        ]

    # ------------------------------------------------------------------
    # construction plumbing
    # ------------------------------------------------------------------
    def _config_factory(self, partition: int, recover: bool) -> WorkerConfig:
        return self._worker_config(partition, recover=recover)

    def _worker_config(self, partition: int, *, recover: bool) -> WorkerConfig:
        return WorkerConfig(
            partition=partition,
            shadow_path=os.path.join(
                self.data_dir, f"partition-{partition}.walshadow"
            ),
            catalog=dict(self.catalog),
            db_config=dict(self.db_config),
            recover=recover,
        )

    def _register_gauges(self) -> None:
        self.metrics.gauge(
            "cluster.worker_restarts", lambda: self.supervisor.restarts
        )
        self.metrics.gauge("cluster.partitions", lambda: self.partitions)
        self.metrics.gauge(
            "cluster.rpc.bytes_sent",
            lambda: sum(
                h.channel.bytes_sent
                for h in self.supervisor.handles.values()
            ),
        )
        self.metrics.gauge(
            "cluster.rpc.frames_sent",
            lambda: sum(
                h.channel.frames_sent
                for h in self.supervisor.handles.values()
            ),
        )
        for p, breaker in enumerate(self._breakers):
            self.metrics.gauge(
                f"cluster.breaker.{p}", breaker.snapshot
            )

    def _write_manifest(self) -> None:
        """Persist what a re-open cannot rediscover: topology + knobs.

        The workers' stores and logs are process-local; the manifest is
        the only durable witness of the partition count, router policy
        and database knobs, exactly as ``open_from_log`` documents.
        """
        manifest = {
            "partitions": self.partitions,
            "router": self.router.spec(),
            "rpc": {
                "timeout": self.rpc_timeout,
                "breaker_threshold": self.breaker_threshold,
                "breaker_cooldown": self.breaker_cooldown,
            },
            "db_config": {
                k: v
                for k, v in self.db_config.items()
                if isinstance(v, (int, float, str, bool, type(None)))
            },
            "catalog": {
                name: {
                    "unique": spec.unique,
                    "nsn_source": spec.nsn_source,
                }
                for name, spec in self.catalog.items()
            },
        }
        path = os.path.join(self.data_dir, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)

    @classmethod
    def open(
        cls,
        data_dir: str,
        extensions: dict,
        **overrides,
    ) -> "PartitionedDatabase":
        """Re-open a cluster from its manifest + per-partition shadows.

        ``extensions`` maps tree names to extension instances (never
        persisted, same contract as ``Database.restart``).  Topology
        (``partitions``, ``router``) is pinned by the manifest;
        database knobs may be overridden per re-open, and everything
        not overridden propagates from the manifest.
        """
        with open(os.path.join(data_dir, MANIFEST_NAME)) as fh:
            manifest = json.load(fh)
        rpc = dict(manifest.get("rpc", {}))
        rpc_timeout = overrides.pop("rpc_timeout", rpc.get("timeout"))
        breaker_threshold = overrides.pop(
            "breaker_threshold", rpc.get("breaker_threshold", 3)
        )
        breaker_cooldown = overrides.pop(
            "breaker_cooldown", rpc.get("breaker_cooldown", 1.0)
        )
        db_config = dict(manifest["db_config"])
        db_config.update(overrides)
        cluster = cls.__new__(cls)
        cluster.partitions = manifest["partitions"]
        cluster.router = make_router(
            manifest["router"], cluster.partitions
        )
        cluster.data_dir = data_dir
        cluster._owns_data_dir = False
        cluster.db_config = db_config
        cluster.rpc_timeout = rpc_timeout
        cluster.breaker_threshold = breaker_threshold
        cluster.breaker_cooldown = breaker_cooldown
        cluster.catalog = {
            name: TreeSpec(
                extension=extensions[name],
                unique=entry["unique"],
                nsn_source=entry["nsn_source"],
            )
            for name, entry in manifest["catalog"].items()
        }
        cluster.metrics = MetricsRegistry(
            enabled=db_config.pop("metrics_enabled", True)
        )
        cluster._req_ids = itertools.count(1)
        cluster._locks = [
            threading.Lock() for _ in range(cluster.partitions)
        ]
        cluster._breakers = cluster._make_breakers()
        cluster._closed = False
        cluster.supervisor = Supervisor(
            cluster.partitions,
            cluster._config_factory,
            initial_recover=True,
        )
        cluster._register_gauges()
        cluster._write_manifest()
        return cluster

    def restart(self, **overrides) -> "PartitionedDatabase":
        """Graceful stop + re-open from the shadows (knob propagation).

        Every knob not named in ``overrides`` keeps its value, matching
        ``Database.restart``'s ``setdefault`` contract; ``partitions``
        and ``router`` are topology, not knobs, and always propagate.
        """
        extensions = {
            name: spec.extension for name, spec in self.catalog.items()
        }
        owned = self._owns_data_dir
        self._owns_data_dir = False  # the successor inherits the dir
        self.shutdown()
        successor = type(self).open(self.data_dir, extensions, **overrides)
        successor._owns_data_dir = owned
        return successor

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def _send_on(
        self,
        partition: int,
        method: str,
        payload: object,
        deadline: float | None = None,
    ) -> int:
        handle = self.supervisor.handle(partition)
        if handle.dead:
            # death already detected (e.g. an explicit chaos kill):
            # recover now so routing resumes, and fail this request
            self._on_worker_death(partition)
        req_id = next(self._req_ids)
        try:
            handle.channel.send(
                (req_id, method, payload), timeout=_budget(deadline)
            )
        except ChannelClosedError:
            self._on_worker_death(partition)
        return req_id

    def _recv_on(
        self, partition: int, req_id: int, deadline: float | None = None
    ) -> object:
        handle = self.supervisor.handle(partition)
        try:
            got_id, ok, payload = handle.channel.recv(
                timeout=_budget(deadline)
            )
        except ChannelClosedError:
            self._on_worker_death(partition)
        if got_id != req_id:  # pragma: no cover - strict req/resp pairing
            raise ClusterError(
                f"partition {partition}: response {got_id} != request "
                f"{req_id}"
            )
        if not ok:
            kind, message = payload
            raise WorkerFaultError(kind, message)
        return payload

    def _on_worker_death(self, partition: int) -> "None":
        """EOF on a channel: the worker died.  Recover, then report.

        The supervisor respawns the partition from its WAL shadow
        before the error surfaces, so by the time the caller sees
        :class:`PartitionFailedError` routing has already resumed —
        the failed request itself is the only casualty (its effects
        are "maybe": the oracle treats in-flight-at-kill ops as
        allowed-present-or-absent).
        """
        self.supervisor.mark_dead(partition)
        if not self._closed:  # teardown must not resurrect workers
            self.supervisor.recover(partition)
        raise PartitionFailedError(partition)

    def _on_worker_timeout(self, partition: int, timeout: float) -> "None":
        """A partition missed its deadline: kill it, trip its breaker.

        Unlike :meth:`_on_worker_death` (EOF — fast, recover inline)
        the hung worker's recovery is *deferred* to the breaker's
        half-open probe: replaying the WAL shadow takes time, and doing
        it here, under the partition lock, would stall every caller
        already queued behind this one — exactly the collapse the
        serving layer exists to prevent.  The SIGKILL is mandatory
        either way: after a timeout the channel may still carry the
        late response, so it can never be reused.
        """
        self.metrics.counter("cluster.rpc.timeouts").inc()
        self.metrics.counter(
            f"cluster.partition.{partition}.rpc_timeouts"
        ).inc()
        self.supervisor.kill(partition)
        self._breakers[partition].record_failure(timeout=True)
        raise PartitionTimeoutError(partition, timeout)

    def _call(
        self,
        partition: int,
        method: str,
        payload: object,
        timeout: float | None = None,
    ) -> object:
        """One request/response exchange, deadline- and breaker-gated.

        The breaker check happens *before* the partition lock: while a
        breaker is open its partition's traffic fails fast without
        queueing on the mutex, so a hung partition cannot pile up
        callers.  The winning half-open probe performs the deferred
        recovery before issuing its RPC.
        """
        timeout = self.rpc_timeout if timeout is None else timeout
        breaker = self._breakers[partition]
        probe = breaker.check()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._locks[partition]:
            if probe:
                try:
                    self.supervisor.ensure(partition)
                except Exception:
                    breaker.record_failure()  # re-open, never wedge
                    raise
            try:
                req_id = self._send_on(
                    partition, method, payload, deadline
                )
                result = self._recv_on(partition, req_id, deadline)
            except RpcTimeoutError:
                self._on_worker_timeout(partition, timeout)
            except WorkerFaultError:
                breaker.record_success()  # the worker answered
                raise
            except PartitionFailedError:
                breaker.record_failure()
                raise
            breaker.record_success()
            return result

    def _scatter(
        self,
        targets: "list[int]",
        requests: dict,
        timeout: float | None = None,
    ) -> dict:
        """Pipelined fan-out: send every leg, then collect every ack.

        ``requests`` maps partition -> (method, payload).  Locks are
        taken in ascending partition order (deadlock freedom) and held
        across the whole exchange.  On a leg failure the error carries
        the already-acknowledged legs in ``.acked`` so a caller (the
        chaos harness) can still account for what committed.

        ``timeout`` bounds each *leg* independently (send and receive
        each get a fresh budget): one hung partition costs its own
        deadline, never a healthy sibling's — a shared budget would let
        a stalled first leg eat the whole window and get responsive
        legs killed as collateral.  Legs whose breaker is open fail
        fast without sending.
        """
        timeout = self.rpc_timeout if timeout is None else timeout
        targets = sorted(targets)
        probes: dict[int, bool] = {}
        admitted: "list[int]" = []
        failures: list[Exception] = []
        for p in targets:
            try:
                probes[p] = self._breakers[p].check()
                admitted.append(p)
            except CircuitOpenError as exc:
                failures.append(exc)
        for p in admitted:
            self._locks[p].acquire()
        try:
            sent: dict[int, int] = {}
            acked: dict[int, object] = {}
            # Collect-all semantics: a failed leg must not strand the
            # other legs' responses in their socket buffers (a later
            # request would then read a stale frame and desync the
            # req/resp pairing), so every successfully-sent leg is
            # received even after a failure is recorded.
            for p in admitted:
                method, payload = requests[p]
                if probes[p]:
                    try:
                        self.supervisor.ensure(p)
                    except Exception as exc:
                        self._breakers[p].record_failure()  # re-open
                        if isinstance(exc, PartitionFailedError):
                            failures.append(exc)
                            continue
                        raise
                deadline = (
                    None
                    if timeout is None
                    else time.monotonic() + timeout
                )
                try:
                    sent[p] = self._send_on(p, method, payload, deadline)
                except RpcTimeoutError:
                    try:
                        self._on_worker_timeout(p, timeout)
                    except PartitionFailedError as exc:
                        failures.append(exc)
                except PartitionFailedError as exc:
                    self._breakers[p].record_failure()
                    failures.append(exc)
            for p, req_id in sent.items():
                deadline = (
                    None
                    if timeout is None
                    else time.monotonic() + timeout
                )
                try:
                    acked[p] = self._recv_on(p, req_id, deadline)
                except RpcTimeoutError:
                    try:
                        self._on_worker_timeout(p, timeout)
                    except PartitionFailedError as exc:
                        failures.append(exc)
                except WorkerFaultError as exc:
                    self._breakers[p].record_success()
                    failures.append(exc)
                except PartitionFailedError as exc:
                    self._breakers[p].record_failure()
                    failures.append(exc)
                else:
                    self._breakers[p].record_success()
            if failures:
                exc = failures[0]
                exc.acked = acked
                raise exc
            return acked
        finally:
            for p in admitted:
                self._locks[p].release()

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_tree(
        self,
        name: str,
        extension,
        *,
        unique: bool = False,
        nsn_source: str = "counter",
    ) -> None:
        """Create ``name`` on every partition (broadcast DDL)."""
        if name in self.catalog:
            raise ClusterError(f"tree {name!r} already exists")
        spec = TreeSpec(
            extension=extension, unique=unique, nsn_source=nsn_source
        )
        acked = self._scatter(
            list(range(self.partitions)),
            {
                p: ("create_tree", (name, spec))
                for p in range(self.partitions)
            },
        )
        missing = set(range(self.partitions)) - set(acked)
        if missing:
            # DDL must be all-or-nothing before the catalog admits the
            # tree; a partition that silently missed it would reject
            # every routed op later.
            raise ClusterError(
                f"create_tree {name!r}: partitions {sorted(missing)} "
                "did not ack"
            )
        self.catalog[name] = spec
        self._write_manifest()

    # ------------------------------------------------------------------
    # single-key operations (one partition each)
    # ------------------------------------------------------------------
    def _routed(self, key: object) -> int:
        partition = self.router.partition_of(key)
        self.metrics.counter("cluster.routed_ops").inc()
        self.metrics.counter(
            f"cluster.partition.{partition}.routed_ops"
        ).inc()
        return partition

    def put(
        self,
        tree: str,
        key: object,
        rid: object,
        timeout: float | None = None,
    ) -> dict:
        """Insert on the owning partition; the ack is the durability
        receipt (commit LSN + shadowed LSN) the oracle audits."""
        partition = self._routed(key)
        return self._call(
            partition, "batch", (tree, [("put", key, rid)]), timeout
        )

    def get(
        self, tree: str, key: object, timeout: float | None = None
    ) -> list:
        partition = self._routed(key)
        ack = self._call(
            partition, "batch", (tree, [("get", key)]), timeout
        )
        return ack["results"][0]

    def delete(
        self,
        tree: str,
        key: object,
        rid: object,
        timeout: float | None = None,
    ) -> dict:
        partition = self._routed(key)
        return self._call(
            partition, "batch", (tree, [("delete", key, rid)]), timeout
        )

    # ------------------------------------------------------------------
    # batched operations (scatter by ownership)
    # ------------------------------------------------------------------
    def _group_pairs(self, pairs) -> dict:
        grouped: dict[int, list] = {}
        for key, rid in pairs:
            grouped.setdefault(self._routed(key), []).append((key, rid))
        return grouped

    def apply_batch(
        self,
        tree: str,
        ops: "list[tuple]",
        timeout: float | None = None,
    ) -> dict:
        """Route a mixed op batch and scatter it; ``{partition: ack}``.

        Each op is a worker batch tuple (``("put", k, r)``,
        ``("delete", k, r)``, ``("get", k)``); ops land on their key's
        partition and each partition's slice commits as one
        transaction there.  This is the chaos harness's entry point —
        the per-partition acks carry the commit/durable LSNs its
        oracle records.
        """
        grouped: dict[int, list] = {}
        for op in ops:
            grouped.setdefault(self._routed(op[1]), []).append(op)
        return self._scatter(
            list(grouped),
            {p: ("batch", (tree, batch)) for p, batch in grouped.items()},
            timeout,
        )

    def multi_put(
        self, tree: str, pairs, timeout: float | None = None
    ) -> int:
        """Batched insert, grouped by owner; returns pairs inserted."""
        grouped = self._group_pairs(pairs)
        acks = self._scatter(
            list(grouped),
            {
                p: ("batch", (tree, [("put_many", chunk)]))
                for p, chunk in grouped.items()
            },
            timeout,
        )
        return sum(ack["results"][0] for ack in acks.values())

    def multi_delete(
        self, tree: str, pairs, timeout: float | None = None
    ) -> int:
        grouped = self._group_pairs(pairs)
        acks = self._scatter(
            list(grouped),
            {
                p: ("batch", (tree, [("delete_many", chunk)]))
                for p, chunk in grouped.items()
            },
            timeout,
        )
        return sum(ack["results"][0] for ack in acks.values())

    def multi_get(
        self, tree: str, keys, timeout: float | None = None
    ) -> dict:
        grouped: dict[int, list] = {}
        for key in keys:
            grouped.setdefault(self._routed(key), []).append(key)
        acks = self._scatter(
            list(grouped),
            {
                p: ("batch", (tree, [("get_many", chunk)]))
                for p, chunk in grouped.items()
            },
            timeout,
        )
        merged: dict = {}
        for ack in acks.values():
            merged.update(ack["results"][0])
        return merged

    # ------------------------------------------------------------------
    # scatter-gather queries
    # ------------------------------------------------------------------
    def search(
        self, tree: str, query: object, timeout: float | None = None
    ) -> list:
        """Scatter ``query``, merge-gather one result sequence.

        The router prunes the fan-out when it can (range router +
        interval query); hash routing scatters to all partitions.
        When every leg reports an ordered result the legs are
        heap-merged into one globally ordered iteration; router key
        ownership is disjoint, so every matching key appears exactly
        once — no cross-partition dedupe pass exists or is needed.
        """
        targets = self.router.partitions_for_query(query)
        if targets is None:
            targets = list(range(self.partitions))
        if len(targets) > 1:
            self.metrics.counter("cluster.scatter_queries").inc()
        acks = self._scatter(
            targets,
            {p: ("scan", (tree, query)) for p in targets},
            timeout,
        )
        legs = [acks[p] for p in sorted(acks)]
        if legs and all(ordered for ordered, _ in legs):
            return list(heapq.merge(*(rows for _, rows in legs)))
        return [row for _, rows in legs for row in rows]

    # ------------------------------------------------------------------
    # observation / maintenance
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cluster metrics + per-partition snapshots + their aggregate.

        Shape: ``cluster`` (front-end registry: routing counters, RPC
        wire gauges, restarts), ``partition.<i>`` (that worker's
        ``db.metrics.snapshot()`` verbatim) and ``aggregate`` (all
        partition snapshots folded with
        :func:`~repro.obs.metrics.merge_snapshots`).
        """
        targets = list(range(self.partitions))
        acks = self._scatter(
            targets, {p: ("snapshot", None) for p in targets}
        )
        return {
            "cluster": self.metrics.snapshot(),
            "partition": {str(p): acks[p] for p in sorted(acks)},
            "aggregate": merge_snapshots(
                [acks[p] for p in sorted(acks)]
            ),
        }

    def describe(self) -> dict:
        """Per-partition knob/LSN report (restart-knob test feed)."""
        targets = list(range(self.partitions))
        return self._scatter(
            targets, {p: ("describe", None) for p in targets}
        )

    def stats(self) -> dict:
        targets = list(range(self.partitions))
        return self._scatter(targets, {p: ("stats", None) for p in targets})

    def checkpoint(self) -> dict:
        targets = list(range(self.partitions))
        return self._scatter(
            targets, {p: ("checkpoint", None) for p in targets}
        )

    def verify(self, queries: dict) -> dict:
        """Structural check + contents per partition.

        ``queries`` maps tree names to an everything-matching query
        for that tree's domain.
        """
        targets = list(range(self.partitions))
        return self._scatter(
            targets, {p: ("verify", queries) for p in targets}
        )

    def protocol_report(self) -> dict:
        targets = list(range(self.partitions))
        return self._scatter(
            targets, {p: ("protocol_report", None) for p in targets}
        )

    # ------------------------------------------------------------------
    # failure injection (chaos harness surface)
    # ------------------------------------------------------------------
    def kill_partition(self, partition: int) -> None:
        """SIGKILL one worker — no flush, no goodbye (chaos mode)."""
        with self._locks[partition]:
            self.supervisor.kill(partition)

    def recover_partition(self, partition: int) -> dict:
        """Respawn a killed worker from its shadow; recovery summary.

        Explicit recovery also closes the partition's breaker: the
        caller (chaos harness, operator) has just done the work the
        half-open probe exists to defer, so traffic may resume at once.
        """
        with self._locks[partition]:
            handle = self.supervisor.recover(partition)
            self._breakers[partition].record_success()
            return handle.ready_info

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Graceful stop: drain each worker, then reap the processes."""
        if self._closed:
            return
        self._closed = True
        for p in range(self.partitions):
            best_effort(
                self._call,
                p,
                "shutdown",
                None,
                only=(PartitionFailedError, ChannelClosedError),
            )
        self.supervisor.shutdown()
        if self._owns_data_dir:
            import shutil

            shutil.rmtree(self.data_dir, ignore_errors=True)

    def __enter__(self) -> "PartitionedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
