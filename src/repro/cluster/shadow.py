"""Per-partition durable WAL shadow (the cross-process recovery medium).

A partition worker's :class:`~repro.database.Database` keeps its WAL in
memory — fine inside one process, useless when the *process* is the
failure unit: SIGKILL takes the log down with it.  The shadow is the
partition's durability boundary across process death: after every
commit the worker appends the newly-durable log records (those at or
below ``flushed_lsn``) to an append-only file, **before** acknowledging
the commit to the client.  Killing the worker at any instant therefore
leaves every *acknowledged* commit recoverable, which is exactly the
contract the chaos harness's commit-LSN oracle checks per partition.

A process kill (the failure the supervisor handles) does not lose OS
page-cache contents, so a plain ``flush()`` to the file is durable for
this failure model; no fsync is needed.  A frame torn by a kill
mid-append is detected by the same length+CRC framing the RPC layer
uses and treated as the torn WAL tail it is: :meth:`load` truncates at
the first bad frame and recovery replays the valid prefix — the ARIES
treatment, one level up.

Respawn rebuilds a :class:`~repro.wal.log.LogManager` whose records
are the shadow's surviving prefix and hands it to
:meth:`Database.open_from_log`, whose redo pass reconstructs every page
onto an empty store (each page's full history is WAL-covered).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from repro.wal.log import LogManager
from repro.wal.records import LogRecord

#: shadow frame header: record payload length + CRC32 (mirrors rpc.py)
_HEADER = struct.Struct("!II")


class WalShadow:
    """Append-only framed record file for one partition's durable WAL."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: LSN of the last record this shadow holds (records are
        #: appended strictly in LSN order starting at 1, so the count
        #: on disk *is* the highest shadowed LSN)
        self.shadowed_lsn = 0
        self._fh = None

    # ------------------------------------------------------------------
    # append side (live worker)
    # ------------------------------------------------------------------
    def open_for_append(self) -> None:
        """Open (create) the file for appending."""
        if self._fh is None:
            self._fh = open(self.path, "ab")

    def append_durable(self, log: LogManager) -> int:
        """Append every not-yet-shadowed durable record of ``log``.

        Returns the number of records appended.  Called by the worker
        after each commit (and checkpoint), before the commit is
        acknowledged on the wire; the write + flush makes the records
        survive a subsequent SIGKILL.
        """
        self.open_for_append()
        flushed = log.flushed_lsn
        if flushed <= self.shadowed_lsn:
            return 0
        appended = 0
        for record in log.records_from(self.shadowed_lsn + 1):
            if record.lsn > flushed:
                break
            payload = pickle.dumps(
                record, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._fh.write(
                _HEADER.pack(len(payload), zlib.crc32(payload))
            )
            self._fh.write(payload)
            self.shadowed_lsn = record.lsn
            appended += 1
        if appended:
            self._fh.flush()
        return appended

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # load side (respawned worker)
    # ------------------------------------------------------------------
    def load_records(self) -> list[LogRecord]:
        """Read back the surviving record prefix.

        Stops — without raising — at EOF, a truncated frame, or a CRC
        mismatch: anything after the first bad frame is a torn tail a
        kill produced mid-append, and the valid prefix is exactly what
        recovery should replay.  A missing file is an empty history.
        """
        records: list[LogRecord] = []
        if not os.path.exists(self.path):
            return records
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break  # clean EOF or torn header
                length, crc = _HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break  # torn tail: truncate here
                records.append(pickle.loads(payload))
        return records

    def load_log(self) -> LogManager:
        """A fresh :class:`LogManager` over the surviving prefix.

        Every loaded record is durable by construction (it was only
        shadowed once at or below ``flushed_lsn``), so the rebuilt log's
        durability boundary is its end.
        """
        records = self.load_records()
        log = LogManager()
        log._records = records
        log._flushed_lsn = len(records)
        self.shadowed_lsn = len(records)
        return log
