"""Key routers: which partition owns which key (pluggable policy).

A router is a pure, deterministic function from keys to partition ids —
the *only* invariant the scatter-gather layer relies on is that the
partitions' key sets are disjoint and exhaustive, which is what makes
the merged range-scan iterator yield each key exactly once (no
cross-partition duplicates to dedupe).

Two policies ship:

* :class:`HashRouter` — stable-hash placement.  Balances any key
  distribution, but every range scan must scatter to all partitions
  (hash destroys order).
* :class:`RangeRouter` — ordered-domain boundaries.  Range queries
  prune to the covering partitions, but skewed key distributions
  produce hot partitions (measurable with the workload generator's
  Zipf-skewed routing streams).

Hashing is **not** Python's builtin ``hash``: that is salted per
process for strings (PYTHONHASHSEED), which would route the same key
differently in different runs and break the benchmarks' deterministic
per-partition-op accounting.  :func:`stable_hash` is CRC32 over a
canonical byte form — identical across processes, runs and machines.
"""

from __future__ import annotations

import pickle
import zlib
from bisect import bisect_right
from typing import Sequence

from repro.errors import ClusterError


def stable_hash(key: object) -> int:
    """Process-independent hash of a routing key.

    Ints (the common B-tree case) map through their two's-complement
    bytes; everything else through its canonical pickle.  Both are
    stable across interpreter runs, unlike builtin ``hash``.
    """
    if isinstance(key, bool) or not isinstance(key, int):
        payload = pickle.dumps(key, protocol=5)
    else:
        payload = key.to_bytes(
            (key.bit_length() + 8) // 8 + 1, "little", signed=True
        )
    return zlib.crc32(payload)


class Router:
    """Interface: key → partition, query → candidate partitions."""

    #: short spec name persisted in the cluster manifest
    kind = "abstract"

    def __init__(self, partitions: int) -> None:
        if partitions < 1:
            raise ClusterError(f"need >=1 partition, got {partitions}")
        self.partitions = partitions

    def partition_of(self, key: object) -> int:
        """The partition owning ``key``."""
        raise NotImplementedError

    def partitions_for_query(self, query: object) -> list[int] | None:
        """Partitions that may hold matches for ``query``.

        ``None`` means "cannot prune": the caller scatters to all
        partitions.  A returned list must be sorted and duplicate-free.
        """
        return None

    def spec(self) -> dict:
        """Manifest form, reconstructed by :func:`make_router`."""
        return {"kind": self.kind, "partitions": self.partitions}


class HashRouter(Router):
    """Stable-hash placement; every multi-key query scatters."""

    kind = "hash"

    def partition_of(self, key: object) -> int:
        return stable_hash(key) % self.partitions


class RangeRouter(Router):
    """Boundary-based placement over an ordered key domain.

    ``boundaries`` are the ``partitions - 1`` split points: partition
    ``i`` owns keys in ``[boundaries[i-1], boundaries[i])`` (the first
    partition is unbounded below, the last unbounded above).  Range
    queries (objects with ``lo``/``hi``, e.g. the B-tree ``Interval``)
    prune to the covering partitions.
    """

    kind = "range"

    def __init__(
        self, partitions: int, boundaries: Sequence[object]
    ) -> None:
        super().__init__(partitions)
        self.boundaries = list(boundaries)
        if len(self.boundaries) != partitions - 1:
            raise ClusterError(
                f"range router over {partitions} partitions needs "
                f"{partitions - 1} boundaries, got {len(self.boundaries)}"
            )
        if any(
            self.boundaries[i] >= self.boundaries[i + 1]
            for i in range(len(self.boundaries) - 1)
        ):
            raise ClusterError("range boundaries must strictly increase")

    @classmethod
    def even(cls, partitions: int, key_space: int) -> "RangeRouter":
        """Evenly split ``[0, key_space)`` into ``partitions`` ranges."""
        width = max(1, key_space // partitions)
        return cls(
            partitions, [width * i for i in range(1, partitions)]
        )

    def partition_of(self, key: object) -> int:
        return bisect_right(self.boundaries, key)

    def partitions_for_query(self, query: object) -> list[int] | None:
        lo = getattr(query, "lo", None)
        hi = getattr(query, "hi", None)
        if lo is None or hi is None:
            # point query (raw key) routes to one partition; anything
            # else is unprunable
            try:
                return [self.partition_of(query)]
            except TypeError:
                return None
        first = self.partition_of(lo)
        last = self.partition_of(hi)
        return list(range(first, last + 1))

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "partitions": self.partitions,
            "boundaries": self.boundaries,
        }


def make_router(spec: "dict | str | Router", partitions: int) -> Router:
    """Build a router from a manifest spec, a shorthand, or pass one
    through.

    Shorthands: ``"hash"`` and ``"range:<key_space>"`` (even split).
    """
    if isinstance(spec, Router):
        if spec.partitions != partitions:
            raise ClusterError(
                f"router covers {spec.partitions} partitions, "
                f"cluster has {partitions}"
            )
        return spec
    if isinstance(spec, str):
        if spec == "hash":
            return HashRouter(partitions)
        if spec.startswith("range:"):
            return RangeRouter.even(partitions, int(spec.split(":", 1)[1]))
        raise ClusterError(f"unknown router spec {spec!r}")
    kind = spec.get("kind")
    if kind == "hash":
        return HashRouter(partitions)
    if kind == "range":
        return RangeRouter(partitions, spec["boundaries"])
    raise ClusterError(f"unknown router spec {spec!r}")
