"""Per-partition circuit breakers: fail fast instead of stalling.

A hung partition is worse than a dead one.  A dead worker's socket
reaches EOF immediately and the supervisor respawns it; a *hung* worker
(SIGSTOPped, livelocked, swapping) answers nothing and, without a
breaker, every call routed to it blocks until its RPC deadline — and
every one of those calls holds the partition's channel mutex, so the
stall compounds.  The breaker turns that into a bounded failure:

* **CLOSED** — normal operation.  Failures (worker death, RPC timeout)
  increment a consecutive-failure count; at ``threshold`` the breaker
  opens.  An RPC *timeout* trips the breaker immediately regardless of
  the count: a worker that missed its deadline has already been killed
  (the channel is poisoned), and recovery is deferred to the probe
  below so callers of healthy partitions never wait behind it.
* **OPEN** — calls fail fast with
  :class:`~repro.errors.CircuitOpenError` carrying ``retry_after``,
  *without* touching the partition lock.  After ``cooldown`` seconds
  the next caller is admitted as the half-open probe.
* **HALF_OPEN** — exactly one probe call is in flight (it performs the
  deferred supervisor recovery, then a real RPC).  Success closes the
  breaker; failure re-opens it for another cooldown.

The state machine is documented in DESIGN.md §14.  Clocks are
injectable so the unit tests are wall-clock-free.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import CircuitOpenError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState:
    """Breaker states (plain strings: they travel through snapshots)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One partition's failure gate (see module docstring).

    Parameters
    ----------
    partition:
        Partition index, embedded in raised errors and snapshots.
    threshold:
        Consecutive non-timeout failures that open the breaker.
    cooldown:
        Seconds an open breaker rejects before admitting a probe.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        partition: int,
        *,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.partition = partition
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: lifetime number of CLOSED/HALF_OPEN -> OPEN transitions
        self.trips = 0
        #: lifetime number of calls rejected while open
        self.rejections = 0

    # ------------------------------------------------------------------
    # call-path gate
    # ------------------------------------------------------------------
    def check(self) -> bool:
        """Admit or reject the calling request.

        Returns ``True`` when the caller is the half-open *probe* (it
        should recover the partition before issuing its RPC), ``False``
        for a normal closed-state call.  Raises
        :class:`~repro.errors.CircuitOpenError` when the breaker is
        open (or a probe is already in flight).
        """
        with self._lock:
            if self._state == BreakerState.CLOSED:
                return False
            if self._state == BreakerState.OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed >= self.cooldown:
                    # this caller claims the single probe slot
                    self._state = BreakerState.HALF_OPEN
                    return True
                self.rejections += 1
                raise CircuitOpenError(
                    self.partition, max(0.0, self.cooldown - elapsed)
                )
            # HALF_OPEN: a probe is in flight; everyone else waits out
            # (at most) one more cooldown from the original open
            self.rejections += 1
            raise CircuitOpenError(self.partition, self.cooldown)

    # ------------------------------------------------------------------
    # outcome reporting
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A call (probe or normal) completed: close and reset."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._failures = 0

    def record_failure(self, *, timeout: bool = False) -> None:
        """A call failed.  Timeouts trip immediately; others count.

        A timeout means the worker missed its deadline and was killed —
        there is no point sending more traffic before the half-open
        probe recovers it.  Other failures (worker death mid-call) are
        recovered inline by the supervisor, so a single one does not
        open the breaker; ``threshold`` consecutive ones (a crash loop)
        do.
        """
        with self._lock:
            self._failures += 1
            if (
                timeout
                or self._state == BreakerState.HALF_OPEN
                or self._failures >= self.threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self.trips += 1

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker admits its probe (0 if not open)."""
        with self._lock:
            if self._state != BreakerState.OPEN:
                return 0.0
            return max(
                0.0, self.cooldown - (self._clock() - self._opened_at)
            )

    def snapshot(self) -> dict:
        """State + counters for the cluster metrics gauges."""
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "rejections": self.rejections,
            }
