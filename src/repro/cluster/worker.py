"""The partition worker: one full database per OS process.

Each worker owns a complete :class:`~repro.database.Database` — its own
WAL, buffer pool, lock manager, recovery and (optionally) lockdep
witness — and serves framed RPC requests over the socket it inherited
at fork.  Running the databases in separate *processes* is what lifts
the PR 1/PR 2 sharding idioms past the GIL: N partitions really do use
N cores, because nothing above the OS scheduler is shared.

Durability contract (the commit-LSN oracle's foundation): every commit
is appended to the partition's :class:`~repro.cluster.shadow.WalShadow`
**before** its acknowledgment frame is sent.  A worker killed at any
instant therefore leaves each acknowledged commit recoverable; the
respawned worker rebuilds its database from the shadow's durable
prefix via :meth:`Database.open_from_log` (ARIES redo onto an empty
store) and reports what it recovered in its ready handshake.

The worker is single-threaded: requests execute in arrival order, one
transaction per ``batch`` request (auto-commit).  Cross-partition
transactions do not exist — see DESIGN.md §13 for what the router does
and does not promise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.rpc import FrameChannel, error_response, ok_response
from repro.cluster.shadow import WalShadow
from repro.database import Database
from repro.errors import ChannelClosedError, best_effort
from repro.gist.checker import check_tree
from repro.wal.records import CommitRecord


@dataclass
class TreeSpec:
    """Catalog entry shipped to workers (extensions pickle at fork)."""

    extension: object
    unique: bool = False
    nsn_source: str = "counter"


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build (or rebuild) itself."""

    partition: int
    shadow_path: str
    #: tree name -> :class:`TreeSpec`; on recovery these supply the
    #: extension instances restart analysis needs (extension code is
    #: never stored in the log, exactly as ``Database.restart``)
    catalog: dict = field(default_factory=dict)
    #: keyword arguments for the worker's :class:`Database`
    db_config: dict = field(default_factory=dict)
    #: rebuild from the WAL shadow instead of starting empty
    recover: bool = False


class PartitionWorker:
    """Request-serving wrapper around one partition's database."""

    def __init__(self, config: WorkerConfig, channel: FrameChannel) -> None:
        self.config = config
        self.channel = channel
        self.shadow = WalShadow(config.shadow_path)
        self.recovery_summary: dict | None = None
        self.db = self._build_database()
        self._running = True

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    def _build_database(self) -> Database:
        config = self.config
        extensions = {
            name: spec.extension for name, spec in config.catalog.items()
        }
        if config.recover:
            log = self.shadow.load_log()
            if log.end_lsn > 0:
                db = Database.open_from_log(
                    log, extensions, **config.db_config
                )
                report = db.recovery_report
                self.recovery_summary = {
                    "analyzed": report.analyzed_records,
                    "redone": report.redone_records,
                    "pages_rebuilt": report.pages_rebuilt,
                    "losers": list(report.losers),
                    "valid_end_lsn": report.valid_end_lsn,
                    "trees": list(report.trees),
                }
                # Recovery itself logged (CLRs, End records) and
                # flushed; those records are part of the durable
                # history the *next* incarnation must see.
                self.shadow.append_durable(db.log)
                return db
        # Fresh start (or an empty shadow): build the catalog from
        # scratch and shadow the tree-create records immediately, so a
        # kill before the first commit still recovers the catalog.
        db = Database(**config.db_config)
        for name, spec in config.catalog.items():
            db.create_tree(
                name,
                spec.extension,
                unique=spec.unique,
                nsn_source=spec.nsn_source,
            )
        db.log.flush()
        self.shadow.append_durable(db.log)
        return db

    # ------------------------------------------------------------------
    # serve loop
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Handshake, then serve requests until shutdown or client EOF."""
        self.channel.send(
            (
                "ready",
                {
                    "partition": self.config.partition,
                    "recovered": self.recovery_summary,
                    "end_lsn": self.db.log.end_lsn,
                },
            )
        )
        while self._running:
            try:
                req_id, method, payload = self.channel.recv()
            except ChannelClosedError:
                break  # client gone: die quietly, shadow is durable
            try:
                result = self.dispatch(method, payload)
            except Exception as exc:
                self.channel.send(error_response(req_id, exc))
            else:
                self.channel.send(ok_response(req_id, result))

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def dispatch(self, method: str, payload: object) -> object:
        """Execute one request; exceptions become typed error frames."""
        handler = getattr(self, f"_do_{method}", None)
        if handler is None:
            raise ValueError(f"unknown RPC method {method!r}")
        return handler(payload)

    def _do_ping(self, _payload: object) -> str:
        return "pong"

    def _do_describe(self, _payload: object) -> dict:
        db = self.db
        return {
            "partition": self.config.partition,
            "trees": sorted(db.trees),
            "page_capacity": db.store.page_capacity,
            "pool_shards": db.pool_shards,
            "leaf_hints": db.leaf_hints,
            "wal_writer": db.wal_writer,
            "protocol_checks": db.protocol_checks,
            "op_tracing": db.op_tracing,
            "end_lsn": db.log.end_lsn,
            "flushed_lsn": db.log.flushed_lsn,
            "shadowed_lsn": self.shadow.shadowed_lsn,
        }

    def _do_create_tree(self, payload: tuple) -> bool:
        name, spec = payload
        self.config.catalog[name] = spec
        self.db.create_tree(
            name,
            spec.extension,
            unique=spec.unique,
            nsn_source=spec.nsn_source,
        )
        self.db.log.flush()
        self.shadow.append_durable(self.db.log)
        return True

    def _do_batch(self, payload: tuple) -> dict:
        """One transaction over a batch of ops, committed and shadowed.

        ``payload = (tree_name, ops)`` with each op one of::

            ("put", key, rid)         ("put_many", pairs)
            ("delete", key, rid)      ("delete_many", pairs)
            ("get", key)              ("get_many", keys)
            ("search", query)

        Reads return their results positionally; the whole batch
        commits atomically *within this partition*.  The ack carries
        the commit record's LSN and the shadow's durable boundary —
        the two numbers the commit-LSN oracle audits after a kill.
        """
        tree_name, ops = payload
        db = self.db
        tree = db.tree(tree_name)
        txn = db.begin()
        results: list = []
        try:
            for op in ops:
                kind = op[0]
                if kind == "put":
                    tree.insert(txn, op[1], op[2])
                    results.append(None)
                elif kind == "delete":
                    tree.delete(txn, op[1], op[2])
                    results.append(None)
                elif kind == "put_many":
                    results.append(tree.multi_put(txn, op[1]))
                elif kind == "delete_many":
                    results.append(tree.multi_delete(txn, op[1]))
                elif kind == "get":
                    results.append(
                        [
                            rid
                            for _, rid in tree.search(
                                txn, tree.ext.eq_query(op[1])
                            )
                        ]
                    )
                elif kind == "get_many":
                    results.append(tree.multi_get(txn, op[1]))
                elif kind == "search":
                    results.append(tree.search(txn, op[1]))
                else:
                    raise ValueError(f"unknown batch op {kind!r}")
        except BaseException:
            best_effort(db.rollback, txn)
            raise
        mark = max(1, db.log.end_lsn)
        db.commit(txn)
        commit_lsn = self._commit_lsn(txn.xid, mark)
        # Durability-before-acknowledgment: the shadow append happens
        # on this side of the response frame.
        self.shadow.append_durable(db.log)
        return {
            "results": results,
            "commit_lsn": commit_lsn,
            "durable_lsn": self.shadow.shadowed_lsn,
        }

    def _commit_lsn(self, xid: int, mark: int) -> int:
        for record in self.db.log.records_from(mark):
            if isinstance(record, CommitRecord) and record.xid == xid:
                return record.lsn
        return 0  # pragma: no cover - commit always logs

    def _do_scan(self, payload: tuple) -> tuple:
        """Read-only range scan; results sorted when the domain allows.

        Returns ``(sorted_flag, [(key, rid), ...])`` — the front end
        heap-merges sorted legs into one ordered iteration and falls
        back to concatenation for unordered domains (R-tree windows,
        RD-tree overlaps).
        """
        tree_name, query = payload
        db = self.db
        tree = db.tree(tree_name)
        txn = db.begin()
        try:
            rows = tree.search(txn, query)
        finally:
            db.commit(txn)
        try:
            rows = sorted(rows)
            ordered = True
        except TypeError:
            ordered = False
        return (ordered, rows)

    def _do_snapshot(self, _payload: object) -> dict:
        return self.db.metrics.snapshot()

    def _do_stats(self, _payload: object) -> dict:
        return self.db.stats()

    def _do_checkpoint(self, _payload: object) -> int:
        lsn = self.db.checkpoint()
        self.shadow.append_durable(self.db.log)
        return lsn

    def _do_verify(self, payload: dict) -> dict:
        """Structural check + full contents per tree (the oracle feed).

        ``payload`` maps tree names to an everything-matching query for
        that tree's domain (the client knows the domains; the worker
        does not guess).
        """
        db = self.db
        out: dict = {
            "partition": self.config.partition,
            "end_lsn": db.log.end_lsn,
            "recovered": self.recovery_summary,
            "trees": {},
        }
        for name, query in payload.items():
            tree = db.tree(name)
            report = check_tree(tree)
            txn = db.begin()
            try:
                contents = tree.search(txn, query)
            finally:
                db.commit(txn)
            out["trees"][name] = {
                "ok": report.ok,
                "errors": list(report.errors),
                "contents": contents,
            }
        return out

    def _do_protocol_report(self, _payload: object) -> list:
        if self.db.witness is None:
            return []
        return [str(v) for v in self.db.witness.drain_new()]

    def _do_shutdown(self, _payload: object) -> bool:
        self.db.shutdown()
        self.shadow.append_durable(self.db.log)
        self.shadow.close()
        self._running = False
        return True


def worker_entry(channel: FrameChannel, config: WorkerConfig) -> None:
    """Process entry point (the fork target)."""
    worker = PartitionWorker(config, channel)
    try:
        worker.serve_forever()
    finally:
        worker.shadow.close()
        channel.close()
