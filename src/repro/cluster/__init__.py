"""Key-partitioned scale-out over process-per-partition workers.

See DESIGN.md §13.  The public surface:

* :class:`PartitionedDatabase` — the logical database front end
* :class:`HashRouter` / :class:`RangeRouter` / :func:`make_router` —
  pluggable key-placement policies
* :func:`stable_hash` — the process-independent hash routing uses
"""

from repro.cluster.partitioned import PartitionedDatabase
from repro.cluster.router import (
    HashRouter,
    RangeRouter,
    Router,
    make_router,
    stable_hash,
)
from repro.cluster.worker import TreeSpec

__all__ = [
    "PartitionedDatabase",
    "HashRouter",
    "RangeRouter",
    "Router",
    "TreeSpec",
    "make_router",
    "stable_hash",
]
